//! Inductive inference — Eq. (3) (original graph) and Eq. (11) (synthetic
//! graph + mapping).

use mcond_graph::{Graph, NodeBatch};
use mcond_gnn::{GnnModel, GraphOps};
use mcond_linalg::DMat;
use mcond_sparse::{Coo, Csr};

/// Where inductive nodes are attached for inference.
pub enum InferenceTarget<'a> {
    /// Eq. (3): attach to the original training graph `T`.
    Original(&'a Graph),
    /// Eq. (11): attach to the synthetic graph `S` through the mapping `M`.
    Synthetic {
        /// The condensed graph `S` (sparsified `A'`, `X'`, `Y'`).
        graph: &'a Graph,
        /// The sparsified mapping `M : N x N'` (original-node rows use the
        /// training-subgraph indexing, matching `NodeBatch::incremental`).
        mapping: &'a Csr,
    },
}

impl InferenceTarget<'_> {
    /// Builds the extended `(base + n) x (base + n)` adjacency and feature
    /// matrix for a batch of inductive nodes.
    #[must_use]
    pub fn attach(&self, batch: &NodeBatch) -> (Csr, DMat) {
        match self {
            InferenceTarget::Original(graph) => attach_to_original(graph, batch),
            InferenceTarget::Synthetic { graph, mapping } => {
                attach_to_synthetic(graph, mapping, batch)
            }
        }
    }

    /// Number of base nodes (N or N').
    #[must_use]
    pub fn base_nodes(&self) -> usize {
        match self {
            InferenceTarget::Original(graph) => graph.num_nodes(),
            InferenceTarget::Synthetic { graph, .. } => graph.num_nodes(),
        }
    }
}

/// Eq. (3): block-extends the original graph with the batch's incremental
/// adjacency and interconnections.
///
/// # Panics
/// Panics when the batch indexes a different training-node count.
#[must_use]
pub fn attach_to_original(graph: &Graph, batch: &NodeBatch) -> (Csr, DMat) {
    assert_eq!(
        batch.incremental.cols(),
        graph.num_nodes(),
        "attach_to_original: batch was built against a different original graph"
    );
    let adj = graph.adj.block_extend(&batch.incremental, &batch.interconnect);
    let x = graph.features.vstack(&batch.features);
    (adj, x)
}

/// Eq. (11): converts the incremental adjacency through the mapping
/// (`aM : n x N'`) and block-extends the synthetic graph.
///
/// # Panics
/// Panics when the mapping's row space does not match the batch's original
/// node indexing, or its column space the synthetic graph.
#[must_use]
pub fn attach_to_synthetic(graph: &Graph, mapping: &Csr, batch: &NodeBatch) -> (Csr, DMat) {
    assert_eq!(
        batch.incremental.cols(),
        mapping.rows(),
        "attach_to_synthetic: mapping rows must index the original training nodes"
    );
    assert_eq!(
        mapping.cols(),
        graph.num_nodes(),
        "attach_to_synthetic: mapping columns must index the synthetic nodes"
    );
    let am = spmm_sparse(&batch.incremental, mapping);
    let adj = graph.adj.block_extend(&am, &batch.interconnect);
    let x = graph.features.vstack(&batch.features);
    (adj, x)
}

/// Runs a GNN over the extended graph and returns the inductive nodes'
/// logits (`n x C`).
#[must_use]
pub fn infer_inductive(model: &GnnModel, target: &InferenceTarget, batch: &NodeBatch) -> DMat {
    let (adj, x) = target.attach(batch);
    let ops = GraphOps::from_adj(&adj);
    let logits = model.predict(&ops, &x);
    logits.slice_rows(target.base_nodes(), logits.rows())
}

/// Sparse × sparse product specialised for `a · M` (tall-thin result): the
/// left factor's rows are short and the result has few columns, so each
/// output row is accumulated densely.
///
/// The accumulator is only reset at the columns a row actually touched
/// (tracked via a `seen` mask), and structurally empty rows are skipped
/// outright — the conversion costs `O(Σ_i fanout_i)`, not `O(n·N')`, so a
/// near-empty batch no longer pays for the accumulator width. Touched
/// columns are emitted in ascending order, exactly like the full
/// accumulator sweep did, so the output is bitwise unchanged.
pub(crate) fn spmm_sparse(a: &Csr, m: &Csr) -> Csr {
    let mut coo = Coo::new(a.rows(), m.cols());
    let mut acc = vec![0f32; m.cols()];
    let mut seen = vec![false; m.cols()];
    let mut touched: Vec<u32> = Vec::new();
    for i in 0..a.rows() {
        if a.row_cols(i).is_empty() {
            continue;
        }
        touched.clear();
        for (&k, &av) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            let k = k as usize;
            for (&c, &mv) in m.row_cols(k).iter().zip(m.row_vals(k)) {
                let cu = c as usize;
                if !seen[cu] {
                    seen[cu] = true;
                    touched.push(c);
                }
                acc[cu] += av * mv;
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            let cu = c as usize;
            if acc[cu] != 0.0 {
                coo.push(i, cu, acc[cu]);
            }
            acc[cu] = 0.0;
            seen[cu] = false;
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcond_gnn::GnnKind;
    use mcond_graph::InductiveDataset;
    use mcond_linalg::{approx_eq, MatRng};

    /// 6-node toy: train {0,1,2} triangle; test {4,5}; val {3}.
    fn toy() -> InductiveDataset {
        let mut coo = Coo::new(6, 6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 0), (4, 1), (5, 2), (4, 5)] {
            coo.push_sym(i, j, 1.0);
        }
        let features = MatRng::seed_from(0).normal(6, 3, 0.0, 1.0);
        let g = Graph::new(coo.to_csr(), features, vec![0, 1, 0, 1, 0, 1], 2);
        InductiveDataset::new(g, vec![0, 1, 2], vec![3], vec![4, 5])
    }

    #[test]
    fn attach_to_original_matches_manual_block() {
        let data = toy();
        let orig = data.original_graph();
        let batch = data.batch(&[4, 5], true);
        let (adj, x) = attach_to_original(&orig, &batch);
        assert_eq!(adj.rows(), 5);
        assert_eq!(x.rows(), 5);
        // test node 4 (extended row 3) connects to train node 1
        assert_eq!(adj.get(3, 1), 1.0);
        assert_eq!(adj.get(1, 3), 1.0);
        // interconnection 4-5 preserved
        assert_eq!(adj.get(3, 4), 1.0);
    }

    #[test]
    fn attach_to_synthetic_converts_edges_through_mapping() {
        let data = toy();
        let batch = data.batch(&[4, 5], false);
        // Synthetic graph with 2 nodes; map train nodes {0,1} -> syn 0 and
        // {2} -> syn 1 with weight 0.5 / 1.0.
        let syn = Graph::new(
            Csr::eye(2),
            DMat::from_rows(&[&[1., 0., 0.], &[0., 1., 0.]]),
            vec![0, 1],
            2,
        );
        let mut map = Coo::new(3, 2);
        map.push(0, 0, 0.5);
        map.push(1, 0, 0.5);
        map.push(2, 1, 1.0);
        let mapping = map.to_csr();
        let (adj, x) = attach_to_synthetic(&syn, &mapping, &batch);
        assert_eq!(adj.rows(), 4);
        assert_eq!(x.rows(), 4);
        // test node 4 connects to train node 1 => aM row = 0.5 at syn 0.
        assert!(approx_eq(adj.get(2, 0), 0.5, 1e-6));
        // test node 5 connects to train node 2 => 1.0 at syn 1.
        assert!(approx_eq(adj.get(3, 1), 1.0, 1e-6));
        // symmetric blocks present
        assert!(approx_eq(adj.get(0, 2), 0.5, 1e-6));
    }

    #[test]
    fn infer_inductive_returns_batch_rows_only() {
        let data = toy();
        let orig = data.original_graph();
        let batch = data.batch(&[4, 5], true);
        let model = GnnModel::new(GnnKind::Gcn, 3, 4, 2, 1);
        let out = infer_inductive(&model, &InferenceTarget::Original(&orig), &batch);
        assert_eq!(out.shape(), (2, 2));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn synthetic_inference_runs_for_every_architecture() {
        let data = toy();
        let batch = data.batch(&[4, 5], false);
        let syn = Graph::new(
            Csr::eye(2),
            DMat::from_rows(&[&[1., 0., 0.], &[0., 1., 0.]]),
            vec![0, 1],
            2,
        );
        let mut map = Coo::new(3, 2);
        for i in 0..3 {
            map.push(i, i % 2, 1.0);
        }
        let mapping = map.to_csr();
        for kind in GnnKind::ALL {
            let model = GnnModel::new(kind, 3, 4, 2, 2);
            let out = infer_inductive(
                &model,
                &InferenceTarget::Synthetic { graph: &syn, mapping: &mapping },
                &batch,
            );
            assert_eq!(out.shape(), (2, 2), "{}", kind.name());
        }
    }

    #[test]
    fn spmm_sparse_matches_dense_product() {
        let mut a = Coo::new(2, 3);
        a.push(0, 1, 2.0);
        a.push(1, 2, 3.0);
        a.push(1, 0, 1.0);
        let a = a.to_csr();
        let mut m = Coo::new(3, 2);
        m.push(0, 0, 1.0);
        m.push(1, 1, 4.0);
        m.push(2, 0, 5.0);
        let m = m.to_csr();
        let product = spmm_sparse(&a, &m).to_dense();
        let reference = a.to_dense().matmul(&m.to_dense());
        assert_eq!(product, reference);
    }

    /// The touched-column reset must behave exactly like the full
    /// accumulator sweep on the hard cases: rows that are structurally
    /// empty (skipped outright), columns whose contributions cancel to an
    /// exact zero (dropped, but still reset for the next row), and
    /// out-of-order column touches (emitted ascending).
    #[test]
    fn spmm_sparse_handles_empty_rows_and_cancellation() {
        // 5 rows, only rows 1 and 3 non-empty.
        let mut a = Coo::new(5, 4);
        a.push(1, 0, 1.0);
        a.push(1, 1, -1.0);
        a.push(3, 1, 2.0);
        let a = a.to_csr();
        // m rows 0 and 1 hit the same column 2 with equal weight, so row 1
        // of the product cancels to exact zero there; column 0 is touched
        // by m row 1 only.
        let mut m = Coo::new(4, 3);
        m.push(0, 2, 3.0);
        m.push(1, 2, 3.0);
        m.push(1, 0, 4.0);
        let m = m.to_csr();
        let product = spmm_sparse(&a, &m);
        let reference = a.to_dense().matmul(&m.to_dense());
        assert_eq!(product.to_dense(), reference);
        // The cancelled (1, 2) entry is structurally absent, not a stored
        // zero, and the empty rows contributed nothing.
        assert_eq!(product.row_cols(1), &[0]);
        assert_eq!(product.row_cols(3), &[0, 2]);
        assert_eq!(product.nnz(), 3);
        for i in [0, 2, 4] {
            assert!(product.row_cols(i).is_empty());
        }
    }
}
