//! SIMD substrate: fixed-width `f32` lane bundles plus runtime kernel-level
//! dispatch.
//!
//! The workspace does not hand-write intrinsics for every kernel. Instead the
//! hot loops are written once against [`F32x8`] — a plain `[f32; 8]` wrapper
//! whose operations LLVM reliably lowers to vector instructions — and each
//! kernel body is instantiated several times behind
//! `#[target_feature(enable = …)]` wrapper functions (see
//! `matmul.rs`/`csr.rs`). Because the wrappers carry the feature attributes,
//! the *same source* is auto-vectorised at SSE2 width in the portable build
//! and at AVX2/AVX-512 width in the feature-gated builds; which one runs is
//! decided once per process by [`simd_level`].
//!
//! # Levels and the `MCOND_SIMD` contract
//!
//! | `MCOND_SIMD`      | level                                             |
//! |-------------------|---------------------------------------------------|
//! | `0` / `scalar`    | [`SimdLevel::Scalar`] — reference kernels         |
//! | `portable`        | [`SimdLevel::Portable`] — lane structs, no FMA    |
//! | `avx2`            | [`SimdLevel::Avx2`] when detected, else clamped   |
//! | `avx512`          | [`SimdLevel::Avx512`] when detected, else clamped |
//! | unset / other     | best level the CPU supports                       |
//!
//! Requests above what the CPU supports clamp down (never up), so setting
//! `MCOND_SIMD=avx512` on an AVX2 box runs the AVX2 kernels and on a
//! non-x86 box the portable ones. `MCOND_SIMD=0` is the escape hatch that
//! forces the retained scalar reference kernels everywhere.
//!
//! # Determinism
//!
//! Lane widths change *grouping* of float additions, so SIMD results may
//! differ from the scalar reference in the last ulps — that is expected and
//! covered by tolerance tests. What is **not** allowed to vary is the result
//! across thread counts: every kernel resolves its level once at entry (on
//! the submitting thread, before any pool fan-out) and fixes its accumulation
//! order independently of how the output is partitioned. [`F32x8::reduce_add`]
//! folds lanes in one documented order for the same reason.

use std::cell::Cell;
use std::sync::OnceLock;

/// Lane count of [`F32x8`]. Eight f32s = one AVX2 register, half an AVX-512
/// register, two SSE2 registers — a width every target handles well.
pub const LANES: usize = 8;

/// Kernel implementation tiers, ordered so `min` clamps a request to what
/// the CPU actually supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Reference scalar kernels (`MCOND_SIMD=0`); the comparison baseline.
    Scalar,
    /// Lane-struct kernels with no FMA, auto-vectorised at whatever width
    /// the default target supports. Works on every architecture.
    Portable,
    /// Lane-struct kernels compiled with `avx2,fma` enabled (x86-64 only).
    Avx2,
    /// Same kernels at AVX-512 width (`avx512f,avx512vl`, x86-64 only).
    Avx512,
}

impl SimdLevel {
    /// Stable lowercase name, matching the accepted `MCOND_SIMD` values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

static BEST: OnceLock<SimdLevel> = OnceLock::new();
static ENV_LEVEL: OnceLock<SimdLevel> = OnceLock::new();

thread_local! {
    /// [`with_simd_level`] override (tests/benches comparing levels
    /// in-process without racing on the environment).
    static LEVEL_OVERRIDE: Cell<Option<SimdLevel>> = const { Cell::new(None) };
}

/// Best level this CPU supports, detected once per process.
fn detect_best() -> SimdLevel {
    *BEST.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Portable
    })
}

/// `MCOND_SIMD` parsed once per process and clamped to [`detect_best`].
fn env_level() -> SimdLevel {
    *ENV_LEVEL.get_or_init(|| {
        let best = detect_best();
        let var = std::env::var("MCOND_SIMD").unwrap_or_default();
        match var.trim().to_ascii_lowercase().as_str() {
            "0" | "scalar" => SimdLevel::Scalar,
            "portable" => SimdLevel::Portable,
            "avx2" => SimdLevel::Avx2.min(best),
            "avx512" => SimdLevel::Avx512.min(best),
            // Unset, "1", or anything unrecognised: auto-detect.
            _ => best,
        }
    })
}

/// The kernel level a dispatch *on this thread, right now* would pick.
///
/// Kernels must call this once at entry and thread the answer through any
/// pool fan-out (workers have their own thread-locals and would otherwise
/// fall back to the environment level mid-kernel).
#[must_use]
pub fn simd_level() -> SimdLevel {
    LEVEL_OVERRIDE
        .with(Cell::get)
        .map_or_else(env_level, |l| l.min(detect_best()))
}

/// Runs `f` with this thread's kernel level forced to (at most) `level`,
/// restoring the previous override afterwards, also on panic.
///
/// Mirrors `mcond_par::with_thread_limit`: it exists so tests and benches
/// can compare SIMD levels within one process. Requests the CPU cannot
/// honour clamp down, so forcing `Avx512` is safe everywhere.
pub fn with_simd_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LEVEL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LEVEL_OVERRIDE.with(|c| c.replace(Some(level))));
    f()
}

/// Every level that is *exactly honoured* on this machine, ascending
/// (always contains `Scalar` and `Portable`). Tests sweep this list so a
/// run on an AVX-512 box exercises all four tiers while a portable box
/// still passes.
#[must_use]
pub fn available_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar, SimdLevel::Portable];
    if detect_best() >= SimdLevel::Avx2 {
        levels.push(SimdLevel::Avx2);
    }
    if detect_best() >= SimdLevel::Avx512 {
        levels.push(SimdLevel::Avx512);
    }
    levels
}

/// Eight `f32` lanes with alignment matching one AVX2 register.
///
/// All operations are lane-wise and written so LLVM vectorises them under
/// whatever target features the *calling* function enables — the
/// compile-twice trick the module docs describe.
#[derive(Clone, Copy, Debug)]
#[repr(align(32))]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    pub const ZERO: Self = Self([0.0; LANES]);

    /// All lanes set to `v`.
    #[inline(always)]
    #[must_use]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Loads the first [`LANES`] values of `src`.
    ///
    /// # Panics
    /// Panics when `src` holds fewer than [`LANES`] values.
    #[inline(always)]
    #[must_use]
    pub fn load(src: &[f32]) -> Self {
        let mut lanes = [0.0f32; LANES];
        lanes.copy_from_slice(&src[..LANES]);
        Self(lanes)
    }

    /// Stores the lanes into the first [`LANES`] values of `dst`.
    ///
    /// # Panics
    /// Panics when `dst` holds fewer than [`LANES`] values.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise `self + o`.
    ///
    /// Named methods instead of `std::ops` impls on purpose: every lane op
    /// in a kernel body must inline under the enclosing `#[target_feature]`
    /// wrapper, and explicit `#[inline(always)]` methods keep that property
    /// visible at the call site.
    #[inline(always)]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (rv, ov) in r.iter_mut().zip(&o.0) {
            *rv += *ov;
        }
        Self(r)
    }

    /// Lane-wise `self * o`.
    #[inline(always)]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (rv, ov) in r.iter_mut().zip(&o.0) {
            *rv *= *ov;
        }
        Self(r)
    }

    /// Lane-wise `acc + self * o` as two rounded operations (multiply, then
    /// add). Bitwise identical to the scalar `acc += a * b` idiom, which is
    /// what the sparse kernels rely on to stay level-independent.
    #[inline(always)]
    #[must_use]
    pub fn madd(self, o: Self, acc: Self) -> Self {
        let mut r = acc.0;
        for ((rv, sv), ov) in r.iter_mut().zip(&self.0).zip(&o.0) {
            *rv += *sv * *ov;
        }
        Self(r)
    }

    /// Lane-wise fused `self.mul_add(o, acc)` (one rounding).
    ///
    /// **Only call this from functions compiled with the `fma` target
    /// feature** — without hardware FMA, `f32::mul_add` lowers to a libm
    /// call per lane and is catastrophically slower than [`Self::madd`].
    #[inline(always)]
    #[must_use]
    pub fn mul_add(self, o: Self, acc: Self) -> Self {
        let mut r = acc.0;
        for ((rv, sv), ov) in r.iter_mut().zip(&self.0).zip(&o.0) {
            *rv = sv.mul_add(*ov, *rv);
        }
        Self(r)
    }

    /// Horizontal sum in a fixed pairwise order — part of the determinism
    /// contract, so do not "simplify" to `iter().sum()`:
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
    #[inline(always)]
    #[must_use]
    pub fn reduce_add(self) -> f32 {
        let a = self.0;
        let h = [a[0] + a[4], a[1] + a[5], a[2] + a[6], a[3] + a[7]];
        let q = [h[0] + h[2], h[1] + h[3]];
        q[0] + q[1]
    }
}

/// `y += alpha * x`, vectorised over [`LANES`]-wide chunks with a scalar
/// tail. Per element this performs exactly `y[i] = y[i] + alpha * x[i]`
/// (multiply then add, no FMA), so it is bitwise identical to the scalar
/// loop it replaces at every SIMD level — the sparse kernels depend on
/// that to keep serving results independent of `MCOND_SIMD`.
///
/// # Panics
/// Panics when `x` is shorter than `y`.
#[inline(always)]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    let a = F32x8::splat(alpha);
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (ys, xs) in (&mut yc).zip(&mut xc) {
        F32x8::load(ys).add(F32x8::load(xs).mul(a)).store(ys);
    }
    for (yv, xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yv += alpha * *xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_order_supports_clamping() {
        assert!(SimdLevel::Scalar < SimdLevel::Portable);
        assert!(SimdLevel::Portable < SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
    }

    #[test]
    fn available_levels_start_with_the_reference_tiers() {
        let levels = available_levels();
        assert_eq!(&levels[..2], &[SimdLevel::Scalar, SimdLevel::Portable]);
        for pair in levels.windows(2) {
            assert!(pair[0] < pair[1], "levels must be ascending");
        }
        assert!(levels.contains(&detect_best()));
    }

    #[test]
    fn with_simd_level_overrides_and_restores() {
        let ambient = simd_level();
        with_simd_level(SimdLevel::Scalar, || {
            assert_eq!(simd_level(), SimdLevel::Scalar);
            // Nested overrides clamp independently.
            with_simd_level(SimdLevel::Portable, || {
                assert_eq!(simd_level(), SimdLevel::Portable);
            });
            assert_eq!(simd_level(), SimdLevel::Scalar);
        });
        assert_eq!(simd_level(), ambient);
        let caught = std::panic::catch_unwind(|| {
            with_simd_level(SimdLevel::Scalar, || panic!("escape"));
        });
        assert!(caught.is_err());
        assert_eq!(simd_level(), ambient, "override restored after panic");
    }

    #[test]
    fn forcing_an_unsupported_level_clamps_down() {
        // Avx512 may or may not exist on the test machine; either way the
        // override must resolve to something the CPU honours.
        with_simd_level(SimdLevel::Avx512, || {
            assert!(simd_level() <= detect_best());
        });
    }

    #[test]
    fn reduce_add_uses_the_documented_fold() {
        let v = F32x8([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]);
        let expected = (((1.0 + 16.0) + (4.0 + 64.0)) as f32) + ((2.0 + 32.0) + (8.0 + 128.0));
        assert_eq!(v.reduce_add().to_bits(), expected.to_bits());
    }

    #[test]
    fn axpy_is_bitwise_the_scalar_loop() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin() * 1e3).collect();
        let y0: Vec<f32> = (0..37).map(|i| (i as f32 * 0.11).cos()).collect();
        let alpha = 0.123_456_7f32;
        let mut fast = y0.clone();
        axpy(alpha, &x, &mut fast);
        let mut slow = y0;
        for (yv, xv) in slow.iter_mut().zip(&x) {
            *yv += alpha * *xv;
        }
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn lane_ops_match_scalar_semantics() {
        let a = F32x8([1.5, -2.0, 0.25, 3.0, -0.5, 8.0, 0.0, -1.0]);
        let b = F32x8::splat(2.0);
        let sum = a.add(b);
        let prod = a.mul(b);
        let fused = a.madd(b, F32x8::splat(1.0));
        for l in 0..LANES {
            assert_eq!(sum.0[l], a.0[l] + 2.0);
            assert_eq!(prod.0[l], a.0[l] * 2.0);
            assert_eq!(fused.0[l], 1.0 + a.0[l] * 2.0);
        }
    }
}
