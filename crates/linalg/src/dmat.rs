//! The dense matrix type and its structural operations.

use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// This is the single tensor type of the workspace. All GNN layers, losses
/// and the condensation objectives operate on `DMat` (dense) and
/// `mcond_sparse::Csr` (sparse adjacency) values.
///
/// Storage is a flat `Vec<f32>` of length `rows * cols`; element `(i, j)`
/// lives at `data[i * cols + j]`.
#[derive(Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DMat {
    /// An `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// An `rows x cols` matrix with every entry set to `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n x n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major flat buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "DMat::from_vec: buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "DMat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Bitwise equality: same shape and every entry has identical bits.
    ///
    /// Unlike `==` this treats `NaN` payloads as equal to themselves and
    /// distinguishes `0.0` from `-0.0` — exactly the contract a
    /// serialisation round-trip must satisfy.
    #[must_use]
    pub fn bit_eq(&self, other: &Self) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// `true` when every entry is finite (no `NaN`, no `±Inf`).
    ///
    /// Subnormal values are finite and pass. This is the input-hygiene
    /// check the serving layer runs on request features: one non-finite
    /// entry would otherwise spread through every downstream matmul.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f32> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Materialised transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// A new matrix holding the given rows (in the given order, duplicates
    /// allowed) — the dense gather used for mini-batching and coresets.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "select_rows: row {src} out of bounds ({})", self.rows);
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    #[must_use]
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Horizontal concatenation `[self, other]`.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    #[must_use]
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Self::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// The sub-matrix made of rows `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > rows`.
    #[must_use]
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= self.rows, "slice_rows: bad range {lo}..{hi}");
        Self {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let shown: Vec<String> =
                row.iter().take(8).map(|v| format!("{v:>9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DMat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.col(1), vec![2., 5.]);
    }

    #[test]
    fn eye_is_identity_under_get() {
        let m = DMat::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = DMat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn select_rows_gathers_with_duplicates() {
        let m = DMat::from_rows(&[&[1., 1.], &[2., 2.], &[3., 3.]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.row(0), &[3., 3.]);
        assert_eq!(s.row(1), &[1., 1.]);
        assert_eq!(s.row(2), &[3., 3.]);
    }

    #[test]
    fn stack_operations() {
        let a = DMat::from_rows(&[&[1., 2.]]);
        let b = DMat::from_rows(&[&[3., 4.]]);
        assert_eq!(a.vstack(&b), DMat::from_rows(&[&[1., 2.], &[3., 4.]]));
        assert_eq!(a.hstack(&b), DMat::from_rows(&[&[1., 2., 3., 4.]]));
    }

    #[test]
    fn slice_rows_extracts_block() {
        let m = DMat::from_rows(&[&[1.], &[2.], &[3.], &[4.]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 0), 3.0);
    }

    #[test]
    fn all_finite_detects_every_non_finite_class() {
        let mut m = DMat::from_rows(&[&[1.0, -2.5], &[0.0, -0.0]]);
        assert!(m.all_finite());
        // Subnormals are finite.
        m.set(0, 0, f32::MIN_POSITIVE / 2.0);
        assert!(m.get(0, 0) != 0.0 && m.get(0, 0).is_subnormal());
        assert!(m.all_finite());
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut poisoned = m.clone();
            poisoned.set(1, 1, bad);
            assert!(!poisoned.all_finite(), "{bad} accepted");
        }
        // Empty matrices are vacuously finite.
        assert!(DMat::zeros(0, 3).all_finite());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = DMat::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn vstack_mismatch_panics() {
        let a = DMat::zeros(1, 2);
        let b = DMat::zeros(1, 3);
        let _ = a.vstack(&b);
    }
}
