//! Element-wise arithmetic and row-level operations on [`DMat`].

use crate::DMat;

impl DMat {
    /// `self + other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &DMat) -> DMat {
        self.zip_with(other, |a, b| a + b)
    }

    /// `self - other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn sub(&self, other: &DMat) -> DMat {
        self.zip_with(other, |a, b| a - b)
    }

    /// Hadamard (element-wise) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &DMat) -> DMat {
        self.zip_with(other, |a, b| a * b)
    }

    /// `self * s`, element-wise.
    #[must_use]
    pub fn scale(&self, s: f32) -> DMat {
        self.map(|v| v * s)
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += *b;
        }
    }

    /// In-place `self += s * other` (axpy).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f32, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += s * *b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, s: f32) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// New matrix with `f` applied to every entry.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> DMat {
        DMat::from_vec(self.rows(), self.cols(), self.as_slice().iter().map(|&v| f(v)).collect())
    }

    /// Applies `f` to every entry in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two equal-shape matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn zip_with(&self, other: &DMat, f: impl Fn(f32, f32) -> f32) -> DMat {
        assert_eq!(self.shape(), other.shape(), "zip_with: shape mismatch");
        DMat::from_vec(
            self.rows(),
            self.cols(),
            self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect(),
        )
    }

    /// ReLU, `max(v, 0)`.
    #[must_use]
    pub fn relu(&self) -> DMat {
        self.map(|v| v.max(0.0))
    }

    /// Logistic sigmoid `1 / (1 + e^{-v})`, numerically stable at both tails.
    #[must_use]
    pub fn sigmoid(&self) -> DMat {
        self.map(sigmoid_scalar)
    }

    /// Adds `row` (a length-`cols` vector) to every row — the bias broadcast.
    ///
    /// # Panics
    /// Panics when `row.len() != self.cols()`.
    #[must_use]
    pub fn add_row_broadcast(&self, row: &[f32]) -> DMat {
        assert_eq!(row.len(), self.cols(), "add_row_broadcast: length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            for (v, b) in out.row_mut(i).iter_mut().zip(row) {
                *v += *b;
            }
        }
        out
    }

    /// Multiplies row `i` by `scales[i]` — the diagonal left-product
    /// `diag(scales) · self` used by degree normalisation.
    ///
    /// # Panics
    /// Panics when `scales.len() != self.rows()`.
    #[must_use]
    pub fn scale_rows(&self, scales: &[f32]) -> DMat {
        assert_eq!(scales.len(), self.rows(), "scale_rows: length mismatch");
        let mut out = self.clone();
        for (i, &s) in scales.iter().enumerate() {
            for v in out.row_mut(i) {
                *v *= s;
            }
        }
        out
    }

    /// In-place variant of [`scale_rows`](Self::scale_rows): multiplies row
    /// `i` by `scales[i]` without allocating a new matrix.
    ///
    /// # Panics
    /// Panics when `scales.len() != self.rows()`.
    pub fn scale_rows_assign(&mut self, scales: &[f32]) {
        assert_eq!(scales.len(), self.rows(), "scale_rows_assign: length mismatch");
        for (i, &s) in scales.iter().enumerate() {
            for v in self.row_mut(i) {
                *v *= s;
            }
        }
    }

    /// Row-wise softmax.
    #[must_use]
    pub fn softmax_rows(&self) -> DMat {
        let mut out = self.clone();
        for i in 0..out.rows() {
            softmax_in_place(out.row_mut(i));
        }
        out
    }

    /// Normalises each row to unit L1 mass; all-zero rows are left as zeros.
    #[must_use]
    pub fn normalize_rows_l1(&self) -> DMat {
        let mut out = self.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let s: f32 = row.iter().map(|v| v.abs()).sum();
            if s > 0.0 {
                for v in row {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Normalises each row to unit L2 norm; all-zero rows are left as zeros.
    #[must_use]
    pub fn normalize_rows_l2(&self) -> DMat {
        let mut out = self.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let s: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if s > 0.0 {
                for v in row {
                    *v /= s;
                }
            }
        }
        out
    }
}

/// Numerically stable scalar logistic sigmoid: never exponentiates a
/// positive argument, so it cannot overflow for large `|x|`.
#[inline]
#[must_use]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place max-shifted softmax over a slice.
pub(crate) fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn elementwise_arithmetic() {
        let a = DMat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = DMat::from_rows(&[&[5., 6.], &[7., 8.]]);
        assert_eq!(a.add(&b), DMat::from_rows(&[&[6., 8.], &[10., 12.]]));
        assert_eq!(b.sub(&a), DMat::from_rows(&[&[4., 4.], &[4., 4.]]));
        assert_eq!(a.hadamard(&b), DMat::from_rows(&[&[5., 12.], &[21., 32.]]));
        assert_eq!(a.scale(2.0), DMat::from_rows(&[&[2., 4.], &[6., 8.]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = DMat::from_rows(&[&[1., 1.]]);
        let g = DMat::from_rows(&[&[2., 4.]]);
        a.axpy(-0.5, &g);
        assert_eq!(a, DMat::from_rows(&[&[0., -1.]]));
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = DMat::from_rows(&[&[-1., 0., 2.]]);
        assert_eq!(a.relu(), DMat::from_rows(&[&[0., 0., 2.]]));
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!(approx_eq(sigmoid_scalar(0.0), 0.5, 1e-6));
        assert!(sigmoid_scalar(100.0) <= 1.0);
        assert!(sigmoid_scalar(-100.0) >= 0.0);
        let s = sigmoid_scalar(3.0) + sigmoid_scalar(-3.0);
        assert!(approx_eq(s, 1.0, 1e-6));
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = DMat::from_rows(&[&[1., 2., 3.], &[1000., 1000., 1000.]]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!(approx_eq(sum, 1.0, 1e-5));
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(approx_eq(s.get(1, 0), 1.0 / 3.0, 1e-5));
    }

    #[test]
    fn row_normalisation_handles_zero_rows() {
        let a = DMat::from_rows(&[&[2., 2.], &[0., 0.]]);
        let l1 = a.normalize_rows_l1();
        assert!(approx_eq(l1.get(0, 0), 0.5, 1e-6));
        assert_eq!(l1.row(1), &[0., 0.]);
        let l2 = a.normalize_rows_l2();
        let norm: f32 = l2.row(0).iter().map(|v| v * v).sum();
        assert!(approx_eq(norm, 1.0, 1e-5));
    }

    #[test]
    fn broadcast_and_row_scaling() {
        let a = DMat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(
            a.add_row_broadcast(&[10., 20.]),
            DMat::from_rows(&[&[11., 22.], &[13., 24.]])
        );
        assert_eq!(a.scale_rows(&[2.0, 0.0]), DMat::from_rows(&[&[2., 4.], &[0., 0.]]));
        let mut b = a.clone();
        b.scale_rows_assign(&[2.0, 0.0]);
        assert_eq!(b, a.scale_rows(&[2.0, 0.0]));
    }
}
