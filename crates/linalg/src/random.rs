//! Seeded random matrix initialisation.
//!
//! All stochastic components in the workspace (parameter init, dataset
//! synthesis, negative sampling, …) draw from a [`MatRng`] so every
//! experiment is reproducible from a single `u64` seed.
//!
//! The generator is an in-repo xoshiro256++ seeded through splitmix64 —
//! the workspace builds hermetically with no external crates, and a small
//! counter-free PRNG with 256 bits of state is more than enough for
//! initialisation and sampling (this is not a cryptographic source).

use crate::DMat;

/// A seeded random source for matrices and index sampling.
///
/// xoshiro256++ (Blackman & Vigna): 256-bit state, period `2^256 - 1`,
/// passes BigCrush. State is seeded by streaming the `u64` seed through
/// splitmix64 so that nearby seeds give uncorrelated streams.
pub struct MatRng {
    state: [u64; 4],
}

/// splitmix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MatRng {
    /// Creates a generator from a fixed seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection, so small ranges stay exactly uniform.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject outputs in the short first stripe (2^64 mod bound values)
        // to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            #[allow(clippy::cast_possible_truncation)]
            if (wide as u64) >= threshold {
                #[allow(clippy::cast_possible_truncation)]
                return (wide >> 64) as u64;
            }
        }
    }

    /// A matrix with i.i.d. entries uniform in `[lo, hi)`.
    #[must_use]
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> DMat {
        let data = (0..rows * cols).map(|_| lo + (hi - lo) * self.unit()).collect();
        DMat::from_vec(rows, cols, data)
    }

    /// A matrix with i.i.d. N(mean, std²) entries (Box–Muller).
    #[must_use]
    pub fn normal(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> DMat {
        let data = (0..rows * cols).map(|_| mean + std * self.standard_normal()).collect();
        DMat::from_vec(rows, cols, data)
    }

    /// Glorot/Xavier uniform initialisation for a `fan_in x fan_out` weight.
    #[must_use]
    pub fn glorot(&mut self, fan_in: usize, fan_out: usize) -> DMat {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(fan_in, fan_out, -bound, bound)
    }

    /// One standard-normal draw via Box–Muller.
    #[must_use]
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller: u1 in (0, 1] so ln is finite.
        let u1: f32 = 1.0 - self.unit();
        let u2: f32 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "MatRng::index: empty range");
        #[allow(clippy::cast_possible_truncation)]
        {
            self.bounded_u64(n as u64) as usize
        }
    }

    /// Uniform f32 in `[0, 1)` (24 high bits of one output).
    #[must_use]
    pub fn unit(&mut self) -> f32 {
        #[allow(clippy::cast_precision_loss)]
        {
            (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniform without
    /// replacement via partial Fisher–Yates).
    ///
    /// # Panics
    /// Panics when `k > n`.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a = MatRng::seed_from(42).uniform(4, 4, 0.0, 1.0);
        let b = MatRng::seed_from(42).uniform(4, 4, 0.0, 1.0);
        assert_eq!(a, b);
        let c = MatRng::seed_from(43).uniform(4, 4, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = MatRng::seed_from(1).uniform(50, 50, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = MatRng::seed_from(2).normal(100, 100, 1.0, 2.0);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        assert!((mean - 1.0).abs() < 0.05, "mean drifted: {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance drifted: {var}");
    }

    #[test]
    fn unit_covers_the_interval() {
        let mut rng = MatRng::seed_from(9);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min {lo}");
        assert!(hi > 0.99, "max {hi}");
    }

    #[test]
    fn index_is_unbiased_on_small_ranges() {
        let mut rng = MatRng::seed_from(10);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.index(3)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = MatRng::seed_from(3);
        let idx = rng.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn glorot_bound_shrinks_with_fan() {
        let mut rng = MatRng::seed_from(4);
        let small = rng.glorot(4, 4);
        let big = rng.glorot(1000, 1000);
        let max_small = small.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_big = big.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_big < max_small);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..20).collect();
        MatRng::seed_from(5).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
