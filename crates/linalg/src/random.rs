//! Seeded random matrix initialisation.
//!
//! All stochastic components in the workspace (parameter init, dataset
//! synthesis, negative sampling, …) draw from a [`MatRng`] so every
//! experiment is reproducible from a single `u64` seed.

use crate::DMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source for matrices and index sampling.
pub struct MatRng {
    rng: StdRng,
}

impl MatRng {
    /// Creates a generator from a fixed seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// A matrix with i.i.d. entries uniform in `[lo, hi)`.
    #[must_use]
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> DMat {
        let data = (0..rows * cols).map(|_| self.rng.gen_range(lo..hi)).collect();
        DMat::from_vec(rows, cols, data)
    }

    /// A matrix with i.i.d. N(mean, std²) entries (Box–Muller).
    #[must_use]
    pub fn normal(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> DMat {
        let data = (0..rows * cols).map(|_| mean + std * self.standard_normal()).collect();
        DMat::from_vec(rows, cols, data)
    }

    /// Glorot/Xavier uniform initialisation for a `fan_in x fan_out` weight.
    #[must_use]
    pub fn glorot(&mut self, fan_in: usize, fan_out: usize) -> DMat {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(fan_in, fan_out, -bound, bound)
    }

    /// One standard-normal draw via Box–Muller.
    #[must_use]
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller: u1 in (0, 1] so ln is finite.
        let u1: f32 = 1.0 - self.rng.gen::<f32>();
        let u2: f32 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "MatRng::index: empty range");
        self.rng.gen_range(0..n)
    }

    /// Uniform f32 in `[0, 1)`.
    #[must_use]
    pub fn unit(&mut self) -> f32 {
        self.rng.gen()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniform without
    /// replacement via partial Fisher–Yates).
    ///
    /// # Panics
    /// Panics when `k > n`.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.rng.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a = MatRng::seed_from(42).uniform(4, 4, 0.0, 1.0);
        let b = MatRng::seed_from(42).uniform(4, 4, 0.0, 1.0);
        assert_eq!(a, b);
        let c = MatRng::seed_from(43).uniform(4, 4, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = MatRng::seed_from(1).uniform(50, 50, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = MatRng::seed_from(2).normal(100, 100, 1.0, 2.0);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        assert!((mean - 1.0).abs() < 0.05, "mean drifted: {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance drifted: {var}");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = MatRng::seed_from(3);
        let idx = rng.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn glorot_bound_shrinks_with_fan() {
        let mut rng = MatRng::seed_from(4);
        let small = rng.glorot(4, 4);
        let big = rng.glorot(1000, 1000);
        let max_small = small.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_big = big.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_big < max_small);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..20).collect();
        MatRng::seed_from(5).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
