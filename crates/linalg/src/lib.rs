//! Dense linear-algebra substrate for the `mcond` workspace.
//!
//! The whole reproduction runs on a single dense matrix type, [`DMat`]: a
//! row-major `f32` matrix with the handful of kernels graph neural networks
//! need — blocked GEMM (in all transpose flavours), element-wise maps,
//! reductions, row operations, and seeded random initialisation.
//!
//! Nothing here is graph-specific; sparse formats live in `mcond-sparse` and
//! differentiation in `mcond-autodiff`.
//!
//! # Example
//! ```
//! use mcond_linalg::DMat;
//! let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = DMat::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

mod dmat;
mod matmul;
mod ops;
mod random;
mod reduce;
pub mod simd;

pub use dmat::DMat;
pub use ops::sigmoid_scalar;
pub use random::MatRng;

/// Tolerance-based float comparison used across the workspace's tests.
///
/// Returns `true` when `a` and `b` are within `tol` absolutely or relatively
/// (whichever is looser), which is the right notion for accumulated f32
/// kernels where the error grows with the reduction length.
#[must_use]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-5));
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-6), 1e-5));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(0.0, 0.0, 1e-9));
    }
}
