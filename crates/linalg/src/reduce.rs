//! Reductions and statistics over [`DMat`].

use crate::DMat;

impl DMat {
    /// Sum of all entries.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all entries (0.0 for an empty matrix).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Per-row sums (length `rows`).
    #[must_use]
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows()).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Per-column sums (length `cols`).
    #[must_use]
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols()];
        for i in 0..self.rows() {
            for (acc, v) in out.iter_mut().zip(self.row(i)) {
                *acc += *v;
            }
        }
        out
    }

    /// Per-column means.
    #[must_use]
    pub fn col_means(&self) -> Vec<f32> {
        let n = self.rows().max(1) as f32;
        self.col_sums().into_iter().map(|s| s / n).collect()
    }

    /// Index of the maximum entry in each row (ties resolve to the first).
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|i| {
                self.row(i)
                    .iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Frobenius norm, `sqrt(Σ v²)`.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// L2,1 norm: the sum of per-row L2 norms — the matrix norm of the
    /// paper's transductive (Eq. 10) and inductive (Eq. 12) losses.
    #[must_use]
    pub fn l21_norm(&self) -> f32 {
        (0..self.rows())
            .map(|i| self.row(i).iter().map(|v| v * v).sum::<f32>().sqrt())
            .sum()
    }

    /// Squared Euclidean distance between row `i` of `self` and row `j` of
    /// `other`.
    ///
    /// # Panics
    /// Panics on column mismatch.
    #[must_use]
    pub fn row_sq_dist(&self, i: usize, other: &DMat, j: usize) -> f32 {
        assert_eq!(self.cols(), other.cols(), "row_sq_dist: column mismatch");
        self.row(i)
            .iter()
            .zip(other.row(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Number of entries with absolute value above `threshold`.
    #[must_use]
    pub fn count_above(&self, threshold: f32) -> usize {
        self.as_slice().iter().filter(|v| v.abs() > threshold).count()
    }

    /// Maximum entry (NEG_INFINITY for an empty matrix).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum entry (INFINITY for an empty matrix).
    #[must_use]
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn fixture() -> DMat {
        DMat::from_rows(&[&[1., -2., 3.], &[0., 4., 0.]])
    }

    #[test]
    fn sums_and_means() {
        let m = fixture();
        assert!(approx_eq(m.sum(), 6.0, 1e-6));
        assert!(approx_eq(m.mean(), 1.0, 1e-6));
        assert_eq!(m.row_sums(), vec![2.0, 4.0]);
        assert_eq!(m.col_sums(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_picks_first_on_ties() {
        let m = DMat::from_rows(&[&[1., 3., 3.], &[5., 2., 5.]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn norms() {
        let m = DMat::from_rows(&[&[3., 4.], &[0., 0.]]);
        assert!(approx_eq(m.frobenius_norm(), 5.0, 1e-6));
        assert!(approx_eq(m.l21_norm(), 5.0, 1e-6));
        let m2 = DMat::from_rows(&[&[3., 4.], &[6., 8.]]);
        assert!(approx_eq(m2.l21_norm(), 15.0, 1e-5));
    }

    #[test]
    fn row_distance() {
        let a = DMat::from_rows(&[&[0., 0.]]);
        let b = DMat::from_rows(&[&[3., 4.]]);
        assert!(approx_eq(a.row_sq_dist(0, &b, 0), 25.0, 1e-6));
    }

    #[test]
    fn count_above_threshold() {
        let m = fixture();
        assert_eq!(m.count_above(0.5), 4);
        assert_eq!(m.count_above(3.5), 1);
    }

    #[test]
    fn extrema() {
        let m = fixture();
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), -2.0);
    }
}
