//! Dense matrix multiplication kernels.
//!
//! A cache-blocked triple loop in `ikj` order (the inner loop streams over
//! contiguous rows of both the accumulator and the right-hand side, so it
//! auto-vectorises). Transpose flavours avoid materialising transposes in
//! the hot training loops: `a.matmul_tn(b)` computes `Aᵀ·B` and
//! `a.matmul_nt(b)` computes `A·Bᵀ` directly from row-major storage.
//!
//! # Parallel execution
//!
//! Every kernel row-partitions its **output** across the `mcond-par` pool
//! when the FLOP count clears [`PAR_MIN_FLOPS`]: each task owns a disjoint
//! `&mut` stripe of the result and accumulates every output element in the
//! same order as the serial path, so results are bit-for-bit identical for
//! any `MCOND_THREADS` value (verified by the determinism tests below).

use crate::DMat;
use std::ops::Range;

/// Reports `2·m·k·n` multiply-add FLOPs to the `linalg.matmul.flops`
/// counter (one relaxed atomic load when observability is off).
fn count_flops(m: usize, k: usize, n: usize) {
    mcond_obs::counter_add("linalg.matmul.flops", 2 * (m as u64) * (k as u64) * (n as u64));
}

/// Cache block edge. 64 rows/cols of f32 keeps three blocks comfortably in
/// L1/L2 on commodity CPUs; measured best among {32, 64, 128} in the
/// workspace's in-repo `microbench` kernels bench (`benches/kernels.rs`).
const BLOCK: usize = 64;

/// Minimum `2·m·k·n` FLOPs before a product is worth fanning out to the
/// pool — below this, pool dispatch overhead rivals the kernel itself.
/// A 64³ GEMM (≈0.5 MFLOP) sits right at the threshold.
const PAR_MIN_FLOPS: usize = 1 << 19;

/// `self · other` restricted to output rows `rows`, writing into the
/// caller-provided stripe `c` (`rows.len() * n` values). Accumulation per
/// output element runs over `p` ascending regardless of the stripe, which
/// is what makes the parallel split bitwise-deterministic.
fn matmul_rows(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    for kk in (0..k).step_by(BLOCK) {
        let k_hi = (kk + BLOCK).min(k);
        for (ii, i) in rows.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[ii * n..(ii + 1) * n];
            for p in kk..k_hi {
                let av = a_row[p];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `selfᵀ · other` restricted to output rows `rows` (columns of `self`),
/// writing into the stripe `c`. Streams over rows of A and B exactly like
/// the serial kernel; per output element the `p` accumulation order is
/// unchanged.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    // C[i][j] = sum_p A[p][i] * B[p][j]: stream over rows of A and B.
    for p in 0..k {
        let a_row = &a[p * m + rows.start..p * m + rows.end];
        let b_row = &b[p * n..(p + 1) * n];
        for (ii, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[ii * n..(ii + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

impl DMat {
    /// `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &DMat) -> DMat {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        count_flops(m, k, n);
        let mut out = DMat::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if 2 * m * k * n >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), n.max(1), 1, |rows, chunk| {
                matmul_rows(a, b, chunk, rows, k, n);
            });
        } else {
            matmul_rows(a, b, out.as_mut_slice(), 0..m, k, n);
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    /// Panics when `self.rows() != other.rows()`.
    #[must_use]
    pub fn matmul_tn(&self, other: &DMat) -> DMat {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: Aᵀ·B needs equal row counts ({} vs {})",
            self.rows(),
            other.rows()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        count_flops(m, k, n);
        let mut out = DMat::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if 2 * m * k * n >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), n.max(1), 1, |rows, chunk| {
                matmul_tn_rows(a, b, chunk, rows, k, m, n);
            });
        } else {
            matmul_tn_rows(a, b, out.as_mut_slice(), 0..m, k, m, n);
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    /// Panics when `self.cols() != other.cols()`.
    #[must_use]
    pub fn matmul_nt(&self, other: &DMat) -> DMat {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: A·Bᵀ needs equal column counts ({} vs {})",
            self.rows(),
            other.rows()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        count_flops(m, k, n);
        let mut out = DMat::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        // Every output element is an independent dot product, so any row
        // partition is trivially deterministic.
        let nt_rows = |rows: Range<usize>, chunk: &mut [f32]| {
            for (ii, i) in rows.enumerate() {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut chunk[ii * n..(ii + 1) * n];
                for (j, out_v) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (av, bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *out_v = acc;
                }
            }
        };
        if 2 * m * k * n >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), n.max(1), 1, nt_rows);
        } else {
            nt_rows(0..m, out.as_mut_slice());
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols(), "matvec: dimension mismatch");
        let (m, k) = (self.rows(), self.cols());
        count_flops(m, k, 1);
        let mut out = vec![0.0f32; m];
        let dot_rows = |rows: Range<usize>, chunk: &mut [f32]| {
            for (ii, i) in rows.enumerate() {
                chunk[ii] = self.row(i).iter().zip(v).map(|(a, b)| a * b).sum();
            }
        };
        if 2 * m * k >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(&mut out, 1, 64, dot_rows);
        } else {
            dot_rows(0..m, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, MatRng};

    fn naive(a: &DMat, b: &DMat) -> DMat {
        let mut out = DMat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn assert_close(a: &DMat, b: &DMat) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_on_odd_shapes() {
        let mut rng = MatRng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 65, 9), (70, 70, 70)] {
            let a = rng.uniform(m, k, -1.0, 1.0);
            let b = rng.uniform(k, n, -1.0, 1.0);
            assert_close(&a.matmul(&b), &naive(&a, &b));
        }
    }

    #[test]
    fn transpose_flavours_match_explicit_transpose() {
        let mut rng = MatRng::seed_from(11);
        let a = rng.uniform(13, 7, -1.0, 1.0);
        let b = rng.uniform(13, 5, -1.0, 1.0);
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b));
        let c = rng.uniform(4, 7, -1.0, 1.0);
        assert_close(&a.matmul_nt(&c), &a.matmul(&c.transpose()));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = MatRng::seed_from(3);
        let a = rng.uniform(6, 6, -2.0, 2.0);
        assert_close(&a.matmul(&DMat::eye(6)), &a);
        assert_close(&DMat::eye(6).matmul(&a), &a);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = DMat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn dimension_mismatch_panics() {
        let _ = DMat::zeros(2, 3).matmul(&DMat::zeros(2, 3));
    }

    /// The determinism contract: for sizes well above [`PAR_MIN_FLOPS`],
    /// forced-serial and 4-way-parallel runs must agree **bitwise** for
    /// every kernel flavour — row-partitioned outputs never change the
    /// per-element accumulation order.
    #[test]
    fn parallel_kernels_are_bitwise_deterministic() {
        let mut rng = MatRng::seed_from(42);
        // 97·131·77 ≈ 2·10⁶ FLOPs, odd shapes to exercise ragged chunks.
        let a = rng.uniform(97, 131, -1.0, 1.0);
        let b = rng.uniform(131, 77, -1.0, 1.0);
        let at = rng.uniform(131, 97, -1.0, 1.0);
        let bt = rng.uniform(97, 131, -1.0, 1.0);
        let v: Vec<f32> = (0..131).map(|i| (i as f32).sin()).collect();

        let serial = mcond_par::with_thread_limit(1, || {
            (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt), a.matvec(&v))
        });
        let parallel = mcond_par::with_thread_limit(4, || {
            (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt), a.matvec(&v))
        });
        assert_eq!(serial.0.as_slice(), parallel.0.as_slice(), "matmul drifted");
        assert_eq!(serial.1.as_slice(), parallel.1.as_slice(), "matmul_tn drifted");
        assert_eq!(serial.2.as_slice(), parallel.2.as_slice(), "matmul_nt drifted");
        assert_eq!(serial.3, parallel.3, "matvec drifted");
    }
}
