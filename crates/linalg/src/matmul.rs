//! Dense matrix multiplication kernels.
//!
//! The default path is a register-blocked packed GEMM: the operands are
//! repacked into cache-resident panels (`MR`-row slivers of A, `NR`-column
//! slivers of B, both k-major) and an `MR×NR` micro-kernel accumulates each
//! output tile entirely in registers. The micro-kernel body is written once
//! against plain arrays and instantiated behind `#[target_feature]` wrappers
//! so the same source auto-vectorises at SSE2, AVX2+FMA, and AVX-512 width;
//! `crate::simd` picks the tier at runtime (`MCOND_SIMD=0` forces the
//! retained scalar reference kernels). Transpose flavours avoid
//! materialising transposes: `a.matmul_tn(b)` computes `Aᵀ·B` and
//! `a.matmul_nt(b)` computes `A·Bᵀ` straight from row-major storage by
//! swapping the packing loops, so all three share one micro-kernel.
//!
//! # Parallel execution and determinism
//!
//! Every kernel row-partitions its **output** across the `mcond-par` pool
//! when the FLOP count clears [`PAR_MIN_FLOPS`]: each task owns a disjoint
//! `&mut` stripe of the result and accumulates every output element in the
//! same order as the serial path (k-blocks ascending, `p` ascending within
//! a block), so results are bit-for-bit identical for any `MCOND_THREADS`
//! value *at a fixed SIMD level*. The level itself is resolved once at
//! kernel entry — before any fan-out — and captured by the stripe closure.
//! Across levels results differ in the last ulps (FMA fuses the rounding;
//! lane grouping reorders additions); see DESIGN.md §4i.

use crate::simd::{self, F32x8, SimdLevel, LANES};
use crate::DMat;
use std::ops::Range;

/// Reports `2·m·k·n` multiply-add FLOPs to the `linalg.matmul.flops`
/// counter (one relaxed atomic load when observability is off).
fn count_flops(m: usize, k: usize, n: usize) {
    mcond_obs::counter_add("linalg.matmul.flops", 2 * (m as u64) * (k as u64) * (n as u64));
}

/// k-block edge of the scalar reference kernel. 64 keeps the streamed B
/// rows hot in L1 and was measured best among {32, 64, 128} before the
/// packed kernels landed; the reference path keeps it so `MCOND_SIMD=0`
/// reproduces the historical accumulation order.
const SCALAR_BLOCK: usize = 64;

/// Micro-kernel register-tile height (rows of A per sliver). Six is the
/// classic f32 choice: 6 broadcast values × 2–4 accumulator vectors stay
/// inside 16 architectural registers on AVX2 and leave headroom on
/// AVX-512. Measured best among {4, 6, 8, 12} on the dev box.
const MR: usize = 6;

/// k-extent of one packed block: `KC·(MR+NR)·4` bytes of panel per block
/// must stay cache-resident. 256 beat 128 and 512 on the dev box.
const KC: usize = 256;

/// Row-block edge (42 A-slivers): one packed A block is ≤ `MC·KC` floats,
/// ~258 KiB — L2-resident while the B panel streams through it.
const MC: usize = 252;

/// Column-panel edge: one packed B panel is ≤ `NC·KC` floats (512 KiB).
/// Must be a multiple of every `NR` in use (16 and 32).
const NC: usize = 512;

/// Minimum `2·m·k·n` FLOPs before a product is worth fanning out to the
/// pool. Re-tuned for the packed kernels: at ~100 GFLOP/s a 2-MFLOP GEMM
/// runs in ~20 µs, which is where pool dispatch stops being noise. The old
/// scalar threshold (`1<<19`) made the pool win nothing below ~0.5 ms.
const PAR_MIN_FLOPS: usize = 1 << 21;

/// Minimum output rows per parallel stripe. Each stripe re-packs the B
/// panels it touches, so stripes must be tall enough to amortise that
/// O(k·n) packing against O(rows·k·n) compute — 48 rows keeps the overhead
/// under ~2% while still splitting finely enough for the pool to balance.
const PAR_MIN_ROWS: usize = 48;

// ---------------------------------------------------------------------------
// Scalar reference kernels (`MCOND_SIMD=0`), retained verbatim from the
// pre-SIMD implementation minus the `av == 0.0` skip: the branch defeated
// vectorisation on dense inputs (sparsity is `Csr`'s job) and broke IEEE
// propagation of `0·Inf`/`0·NaN`.
// ---------------------------------------------------------------------------

/// `self · other` restricted to output rows `rows`, writing into the
/// caller-provided stripe `c` (`rows.len() * n` values). Accumulation per
/// output element runs over `p` ascending within ascending k-blocks
/// regardless of the stripe, which is what makes the parallel split
/// bitwise-deterministic.
fn matmul_rows_scalar(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    for kk in (0..k).step_by(SCALAR_BLOCK) {
        let k_hi = (kk + SCALAR_BLOCK).min(k);
        for (ii, i) in rows.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[ii * n..(ii + 1) * n];
            for p in kk..k_hi {
                let av = a_row[p];
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `selfᵀ · other` restricted to output rows `rows` (columns of `self`),
/// writing into the stripe `c`. Streams over rows of A and B; per output
/// element the `p` accumulation order is ascending.
fn matmul_tn_rows_scalar(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    // C[i][j] = sum_p A[p][i] * B[p][j]: stream over rows of A and B.
    for p in 0..k {
        let a_row = &a[p * m + rows.start..p * m + rows.end];
        let b_row = &b[p * n..(p + 1) * n];
        for (ii, &av) in a_row.iter().enumerate() {
            let c_row = &mut c[ii * n..(ii + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `self · otherᵀ` restricted to output rows `rows`. Every output element
/// is an independent ascending dot product.
fn matmul_nt_rows_scalar(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    for (ii, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut c[ii * n..(ii + 1) * n];
        for (j, out_v) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *out_v += acc;
        }
    }
}

/// Row-wise dot products for `matvec`, scalar reference order (ascending).
fn matvec_rows_scalar(a: &[f32], v: &[f32], out: &mut [f32], rows: Range<usize>, k: usize) {
    for (ii, i) in rows.enumerate() {
        let row = &a[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for (av, bv) in row.iter().zip(v) {
            acc += av * bv;
        }
        out[ii] = acc;
    }
}

// ---------------------------------------------------------------------------
// Packed micro-kernel GEMM, generic over the register-tile width `NR` and
// whether the target has hardware FMA. The `FMA` flag is a const so each
// instantiation compiles to branch-free straight-line code; `f32::mul_add`
// without the `fma` target feature would lower to a libm call per element.
// ---------------------------------------------------------------------------

/// `C[0..rh, 0..cw] += Ap · Bp` for one register tile. `ap` is an A sliver
/// (`kc × MR`, row-padded with zeros), `bp` a B sliver (`kc × NR`,
/// column-padded with zeros); the accumulators cover the full `MR×NR` tile
/// but only the `rh×cw` valid corner is stored, so the zero padding never
/// reaches `c` (NaN/Inf in real data still propagates normally because `k`
/// is never padded).
///
/// Two codegen subtleties, both measured on the dev box:
/// - each sliver row is converted to a fixed-size array reference before
///   indexing — with runtime `kc` LLVM cannot hoist the slice bounds
///   checks out of the p-loop (39 → 91 GFLOP/s);
/// - the store bounds are **compile-time constants** here. A variable
///   `acc[r][ci]` store loop keeps the whole accumulator array addressable,
///   and depending on pass ordering LLVM then round-trips every accumulator
///   through the stack *inside* the k-loop (2.3× slower). Ragged edge tiles
///   go through [`micro_tile_edge`] instead.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn micro_tile_full<const NR: usize, const FMA: bool>(ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let av: &[f32; MR] = av.try_into().expect("A sliver row");
        let bv: &[f32; NR] = bv.try_into().expect("B sliver row");
        for r in 0..MR {
            let a = av[r];
            for ci in 0..NR {
                acc[r][ci] = if FMA { a.mul_add(bv[ci], acc[r][ci]) } else { acc[r][ci] + a * bv[ci] };
            }
        }
    }
    for r in 0..MR {
        let c_row = &mut c[r * ldc..r * ldc + NR];
        for ci in 0..NR {
            c_row[ci] += acc[r][ci];
        }
    }
}

/// [`micro_tile_full`] for ragged boundary tiles: identical accumulation
/// (so edge elements see the same order as interior ones), but only the
/// `rh×cw` valid corner of the register tile is stored. At most one tile
/// column and `MR-1` tile rows per product take this path, so its codegen
/// does not matter.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn micro_tile_edge<const NR: usize, const FMA: bool>(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    rh: usize,
    cw: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let av: &[f32; MR] = av.try_into().expect("A sliver row");
        let bv: &[f32; NR] = bv.try_into().expect("B sliver row");
        for r in 0..MR {
            let a = av[r];
            for ci in 0..NR {
                acc[r][ci] = if FMA { a.mul_add(bv[ci], acc[r][ci]) } else { acc[r][ci] + a * bv[ci] };
            }
        }
    }
    for r in 0..rh {
        let c_row = &mut c[r * ldc..r * ldc + cw];
        for ci in 0..cw {
            c_row[ci] += acc[r][ci];
        }
    }
}

/// Packed GEMM over an output row stripe: `C[rows, :] += op(A) · op(B)`.
///
/// The transpose flavours differ only in how elements are *addressed* while
/// packing (`a_at(i, p)`/`b_at(p, j)` return logical `A[i][p]`/`B[p][j]`),
/// so nn/tn/nt all share this driver and the micro-kernel above.
///
/// Loop nest: `j`-panels (NC) → `k`-blocks (KC, ascending) → pack B panel →
/// `i`-blocks (MC) → pack A block → micro sweep. For a fixed output element
/// the contributions arrive in ascending `k`-block order with `p` ascending
/// inside each block — independent of the stripe, which keeps the parallel
/// split bitwise-deterministic at any thread count.
#[inline(always)]
fn gemm_packed<const NR: usize, const FMA: bool>(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a_at: &impl Fn(usize, usize) -> f32,
    b_at: &impl Fn(usize, usize) -> f32,
    c: &mut [f32],
) {
    let ms = rows.len();
    if ms == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert_eq!(c.len(), ms * n);
    let kc_max = KC.min(k);
    let mut apack = vec![0.0f32; ms.min(MC).next_multiple_of(MR) * kc_max];
    let mut bpack = vec![0.0f32; n.min(NC).next_multiple_of(NR) * kc_max];
    let mut j0 = 0;
    while j0 < n {
        let jn = (j0 + NC).min(n) - j0;
        let mut kk = 0;
        while kk < k {
            let kh = (kk + KC).min(k);
            let kc = kh - kk;
            // Pack the B panel: NR-column slivers, k-major inside a sliver.
            let mut dst = 0;
            let mut jj = 0;
            while jj < jn {
                let jw = (jj + NR).min(jn) - jj;
                for p in kk..kh {
                    for x in 0..NR {
                        bpack[dst] = if x < jw { b_at(p, j0 + jj + x) } else { 0.0 };
                        dst += 1;
                    }
                }
                jj += NR;
            }
            let mut i0 = 0;
            while i0 < ms {
                let mc = (i0 + MC).min(ms) - i0;
                // Pack the A block: MR-row slivers, k-major inside a sliver.
                let mut dst = 0;
                let mut rr = 0;
                while rr < mc {
                    let rh = (rr + MR).min(mc) - rr;
                    for p in kk..kh {
                        for x in 0..MR {
                            apack[dst] =
                                if x < rh { a_at(rows.start + i0 + rr + x, p) } else { 0.0 };
                            dst += 1;
                        }
                    }
                    rr += MR;
                }
                // Micro-kernel sweep over the packed slivers.
                let mut rr = 0;
                let mut sa = 0;
                while rr < mc {
                    let rh = (rr + MR).min(mc) - rr;
                    let ap = &apack[sa * MR * kc..(sa + 1) * MR * kc];
                    let mut jj = 0;
                    let mut sb = 0;
                    while jj < jn {
                        let jw = (jj + NR).min(jn) - jj;
                        let bp = &bpack[sb * NR * kc..(sb + 1) * NR * kc];
                        let ct = &mut c[(i0 + rr) * n + j0 + jj..];
                        if rh == MR && jw == NR {
                            micro_tile_full::<NR, FMA>(ap, bp, ct, n);
                        } else {
                            micro_tile_edge::<NR, FMA>(ap, bp, ct, n, rh, jw);
                        }
                        jj += NR;
                        sb += 1;
                    }
                    rr += MR;
                    sa += 1;
                }
                i0 += MC;
            }
            kk += KC;
        }
        j0 += NC;
    }
}

/// Lane-blocked row dot products for `matvec`. The reduction is split into
/// 4 × [`LANES`] fixed partial sums (chunk `c` of 8 feeds partial `c mod 4`)
/// folded in one documented order, then an ascending scalar tail — the
/// order depends only on `k`, never on threading.
fn matvec_rows_lanes<const FMA: bool>(
    a: &[f32],
    v: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
) {
    let chunks = k / LANES;
    let quads = chunks / 4;
    for (ii, i) in rows.enumerate() {
        let row = &a[i * k..(i + 1) * k];
        // Four named accumulators, never indexed by a runtime value: an
        // `acc[c & 3]` round-robin array keeps the aggregate addressable
        // and (like the GEMM edge store) can demote all four vectors to
        // the stack inside the hot loop. Chunk c still lands in
        // accumulator c mod 4, so the accumulation order is unchanged.
        let step = |acc: F32x8, off: usize| {
            let x = F32x8::load(&row[off..]);
            let y = F32x8::load(&v[off..]);
            if FMA { x.mul_add(y, acc) } else { x.madd(y, acc) }
        };
        let (mut a0, mut a1, mut a2, mut a3) =
            (F32x8::ZERO, F32x8::ZERO, F32x8::ZERO, F32x8::ZERO);
        for q in 0..quads {
            let base = q * 4 * LANES;
            a0 = step(a0, base);
            a1 = step(a1, base + LANES);
            a2 = step(a2, base + 2 * LANES);
            a3 = step(a3, base + 3 * LANES);
        }
        let mut c = quads * 4;
        if c < chunks {
            a0 = step(a0, c * LANES);
            c += 1;
        }
        if c < chunks {
            a1 = step(a1, c * LANES);
            c += 1;
        }
        if c < chunks {
            a2 = step(a2, c * LANES);
        }
        let mut s = a0.add(a2).add(a1.add(a3)).reduce_add();
        for p in chunks * LANES..k {
            s = if FMA { row[p].mul_add(v[p], s) } else { s + row[p] * v[p] };
        }
        out[ii] = s;
    }
}

// ---------------------------------------------------------------------------
// Level instantiations: the same generic bodies compiled per feature tier.
// The `#[target_feature]` wrappers are what let LLVM re-vectorise the
// `#[inline(always)]` kernels at AVX2/AVX-512 width; portable tiers use
// NR=16 without FMA, x86 tiers NR=16/32 with FMA. Wider tiles (8×32,
// 8×48) measured *slower* on the dev box — register spills.
// ---------------------------------------------------------------------------

fn gemm_nn_portable(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    gemm_packed::<16, false>(rows, k, n, &|i, p| a[i * k + p], &|p, j| b[p * n + j], c);
}
#[allow(clippy::too_many_arguments)]
fn gemm_tn_portable(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, m: usize, n: usize) {
    gemm_packed::<16, false>(rows, k, n, &|i, p| a[p * m + i], &|p, j| b[p * n + j], c);
}
fn gemm_nt_portable(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    gemm_packed::<16, false>(rows, k, n, &|i, p| a[i * k + p], &|p, j| b[j * k + p], c);
}
fn matvec_portable(a: &[f32], v: &[f32], out: &mut [f32], rows: Range<usize>, k: usize) {
    matvec_rows_lanes::<false>(a, v, out, rows, k);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nn_avx2(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    gemm_packed::<16, true>(rows, k, n, &|i, p| a[i * k + p], &|p, j| b[p * n + j], c);
}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_tn_avx2(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, m: usize, n: usize) {
    gemm_packed::<16, true>(rows, k, n, &|i, p| a[p * m + i], &|p, j| b[p * n + j], c);
}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nt_avx2(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    gemm_packed::<16, true>(rows, k, n, &|i, p| a[i * k + p], &|p, j| b[j * k + p], c);
}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matvec_avx2(a: &[f32], v: &[f32], out: &mut [f32], rows: Range<usize>, k: usize) {
    matvec_rows_lanes::<true>(a, v, out, rows, k);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn gemm_nn_avx512(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    gemm_packed::<32, true>(rows, k, n, &|i, p| a[i * k + p], &|p, j| b[p * n + j], c);
}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_tn_avx512(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, m: usize, n: usize) {
    gemm_packed::<32, true>(rows, k, n, &|i, p| a[p * m + i], &|p, j| b[p * n + j], c);
}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
unsafe fn gemm_nt_avx512(a: &[f32], b: &[f32], c: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    gemm_packed::<32, true>(rows, k, n, &|i, p| a[i * k + p], &|p, j| b[j * k + p], c);
}

// ---------------------------------------------------------------------------
// Per-stripe dispatch. The level is decided by the *caller* (once, at
// kernel entry, before any pool fan-out) and passed down so every stripe of
// one product runs the same tier.
// ---------------------------------------------------------------------------

fn matmul_rows_level(
    level: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    match level {
        SimdLevel::Scalar => matmul_rows_scalar(a, b, c, rows, k, n),
        SimdLevel::Portable => gemm_nn_portable(a, b, c, rows, k, n),
        // SAFETY: `simd::simd_level()` only yields Avx2/Avx512 after runtime
        // feature detection succeeded (clamped in `with_simd_level` too).
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { gemm_nn_avx2(a, b, c, rows, k, n) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { gemm_nn_avx512(a, b, c, rows, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => gemm_nn_portable(a, b, c, rows, k, n),
    }
}

#[allow(clippy::too_many_arguments)]
fn matmul_tn_rows_level(
    level: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    match level {
        SimdLevel::Scalar => matmul_tn_rows_scalar(a, b, c, rows, k, m, n),
        SimdLevel::Portable => gemm_tn_portable(a, b, c, rows, k, m, n),
        // SAFETY: as in `matmul_rows_level`.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { gemm_tn_avx2(a, b, c, rows, k, m, n) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { gemm_tn_avx512(a, b, c, rows, k, m, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => gemm_tn_portable(a, b, c, rows, k, m, n),
    }
}

fn matmul_nt_rows_level(
    level: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    match level {
        SimdLevel::Scalar => matmul_nt_rows_scalar(a, b, c, rows, k, n),
        SimdLevel::Portable => gemm_nt_portable(a, b, c, rows, k, n),
        // SAFETY: as in `matmul_rows_level`.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { gemm_nt_avx2(a, b, c, rows, k, n) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { gemm_nt_avx512(a, b, c, rows, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => gemm_nt_portable(a, b, c, rows, k, n),
    }
}

fn matvec_rows_level(
    level: SimdLevel,
    a: &[f32],
    v: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
) {
    match level {
        SimdLevel::Scalar => matvec_rows_scalar(a, v, out, rows, k),
        SimdLevel::Portable => matvec_portable(a, v, out, rows, k),
        // SAFETY: as in `matmul_rows_level`.
        // Avx512 deliberately reuses the avx2 instantiation: matvec is
        // written at 256-bit width (it is bandwidth-bound, not port-bound)
        // and the avx512-feature compile of the same body measured ~2.5x
        // slower on the dev box. Both instantiations execute the identical
        // operation sequence, so this is invisible in results.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { matvec_avx2(a, v, out, rows, k) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => matvec_portable(a, v, out, rows, k),
    }
}

impl DMat {
    /// `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &DMat) -> DMat {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        count_flops(m, k, n);
        let level = simd::simd_level();
        let mut out = DMat::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        // The thread gate matters even though `parallel_row_chunks` would
        // run serially anyway: its serial path still iterates the chunk
        // ranges, and per-stripe B-panel re-packing is pure overhead when
        // one thread does all the work. Stripe boundaries never change the
        // per-element accumulation order, so this is bit-neutral.
        if mcond_par::max_threads() > 1 && 2 * m * k * n >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), n.max(1), PAR_MIN_ROWS, |rows, chunk| {
                matmul_rows_level(level, a, b, chunk, rows, k, n);
            });
        } else {
            matmul_rows_level(level, a, b, out.as_mut_slice(), 0..m, k, n);
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    /// Panics when `self.rows() != other.rows()`.
    #[must_use]
    pub fn matmul_tn(&self, other: &DMat) -> DMat {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: Aᵀ·B needs equal row counts ({} vs {})",
            self.rows(),
            other.rows()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        count_flops(m, k, n);
        let level = simd::simd_level();
        let mut out = DMat::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if mcond_par::max_threads() > 1 && 2 * m * k * n >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), n.max(1), PAR_MIN_ROWS, |rows, chunk| {
                matmul_tn_rows_level(level, a, b, chunk, rows, k, m, n);
            });
        } else {
            matmul_tn_rows_level(level, a, b, out.as_mut_slice(), 0..m, k, m, n);
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    /// Panics when `self.cols() != other.cols()`.
    #[must_use]
    pub fn matmul_nt(&self, other: &DMat) -> DMat {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: A·Bᵀ needs equal column counts ({} vs {})",
            self.rows(),
            other.rows()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        count_flops(m, k, n);
        let level = simd::simd_level();
        let mut out = DMat::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if mcond_par::max_threads() > 1 && 2 * m * k * n >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(out.as_mut_slice(), n.max(1), PAR_MIN_ROWS, |rows, chunk| {
                matmul_nt_rows_level(level, a, b, chunk, rows, k, n);
            });
        } else {
            matmul_nt_rows_level(level, a, b, out.as_mut_slice(), 0..m, k, n);
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols(), "matvec: dimension mismatch");
        let (m, k) = (self.rows(), self.cols());
        count_flops(m, k, 1);
        let level = simd::simd_level();
        let mut out = vec![0.0f32; m];
        let a = self.as_slice();
        if mcond_par::max_threads() > 1 && 2 * m * k >= PAR_MIN_FLOPS {
            mcond_par::parallel_row_chunks(&mut out, 1, 64, |rows, chunk| {
                matvec_rows_level(level, a, v, chunk, rows, k);
            });
        } else {
            matvec_rows_level(level, a, v, &mut out, 0..m, k);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{available_levels, with_simd_level};
    use crate::{approx_eq, MatRng};

    fn naive(a: &DMat, b: &DMat) -> DMat {
        let mut out = DMat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn assert_close(a: &DMat, b: &DMat) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_on_odd_shapes() {
        let mut rng = MatRng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 65, 9), (70, 70, 70)] {
            let a = rng.uniform(m, k, -1.0, 1.0);
            let b = rng.uniform(k, n, -1.0, 1.0);
            assert_close(&a.matmul(&b), &naive(&a, &b));
        }
    }

    #[test]
    fn every_simd_level_matches_naive() {
        let mut rng = MatRng::seed_from(19);
        // Shapes straddle the MR=6 / NR=16|32 tile edges and KC.
        for &(m, k, n) in &[(1, 1, 1), (6, 16, 32), (7, 300, 33), (65, 130, 31)] {
            let a = rng.uniform(m, k, -1.0, 1.0);
            let b = rng.uniform(k, n, -1.0, 1.0);
            let want = naive(&a, &b);
            for level in available_levels() {
                let got = with_simd_level(level, || a.matmul(&b));
                assert_close(&got, &want);
            }
        }
    }

    #[test]
    fn transpose_flavours_match_explicit_transpose() {
        let mut rng = MatRng::seed_from(11);
        let a = rng.uniform(13, 7, -1.0, 1.0);
        let b = rng.uniform(13, 5, -1.0, 1.0);
        let c = rng.uniform(4, 7, -1.0, 1.0);
        for level in available_levels() {
            with_simd_level(level, || {
                assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b));
                assert_close(&a.matmul_nt(&c), &a.matmul(&c.transpose()));
            });
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = MatRng::seed_from(3);
        let a = rng.uniform(6, 6, -2.0, 2.0);
        assert_close(&a.matmul(&DMat::eye(6)), &a);
        assert_close(&DMat::eye(6).matmul(&a), &a);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = DMat::from_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn dimension_mismatch_panics() {
        let _ = DMat::zeros(2, 3).matmul(&DMat::zeros(2, 3));
    }

    /// The determinism contract: for sizes well above [`PAR_MIN_FLOPS`],
    /// forced-serial and 4-way-parallel runs must agree **bitwise** for
    /// every kernel flavour at every SIMD level — row-partitioned outputs
    /// never change the per-element accumulation order, and the level is
    /// resolved before fan-out.
    #[test]
    fn parallel_kernels_are_bitwise_deterministic_at_every_level() {
        let mut rng = MatRng::seed_from(42);
        // 157·311·97 ≈ 9.5 MFLOP — comfortably above PAR_MIN_FLOPS, odd
        // shapes to exercise ragged chunks and tile edges.
        let a = rng.uniform(157, 311, -1.0, 1.0);
        let b = rng.uniform(311, 97, -1.0, 1.0);
        let at = rng.uniform(311, 157, -1.0, 1.0);
        let bt = rng.uniform(157, 311, -1.0, 1.0);
        let v: Vec<f32> = (0..311).map(|i| (i as f32).sin()).collect();

        for level in available_levels() {
            let run = || (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt), a.matvec(&v));
            let serial = with_simd_level(level, || mcond_par::with_thread_limit(1, run));
            let parallel = with_simd_level(level, || mcond_par::with_thread_limit(4, run));
            let tag = level.name();
            assert_eq!(serial.0.as_slice(), parallel.0.as_slice(), "matmul drifted at {tag}");
            assert_eq!(serial.1.as_slice(), parallel.1.as_slice(), "matmul_tn drifted at {tag}");
            assert_eq!(serial.2.as_slice(), parallel.2.as_slice(), "matmul_nt drifted at {tag}");
            assert_eq!(serial.3, parallel.3, "matvec drifted at {tag}");
        }
    }
}
