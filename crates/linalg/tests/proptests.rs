//! Property-style tests for the dense algebra substrate.
//!
//! Cases are drawn from the workspace's own seeded [`MatRng`] rather than
//! an external fuzzing crate so the build stays hermetic. Every property
//! runs over a fixed fan of per-case seeds; assertion messages carry the
//! case index so a failure replays deterministically.

use mcond_linalg::simd::{self, SimdLevel};
use mcond_linalg::{approx_eq, DMat, MatRng};

const CASES: u64 = 64;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0xD0A1 ^ (salt << 32) ^ case)
}

fn arb_mat(rng: &mut MatRng, max_dim: usize) -> DMat {
    let r = 1 + rng.index(max_dim);
    let c = 1 + rng.index(max_dim);
    rng.uniform(r, c, -10.0, 10.0)
}

fn arb_mat_pair(rng: &mut MatRng, max_dim: usize) -> (DMat, DMat) {
    let r = 1 + rng.index(max_dim);
    let c = 1 + rng.index(max_dim);
    (rng.uniform(r, c, -10.0, 10.0), rng.uniform(r, c, -10.0, 10.0))
}

fn mats_close(a: &DMat, b: &DMat, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[test]
fn transpose_is_involutive() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(1, case), 12);
        assert_eq!(m.transpose().transpose(), m, "case {case}");
    }
}

#[test]
fn add_commutes() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(2, case), 12);
        assert!(mats_close(&a.add(&b), &b.add(&a), 1e-5), "case {case}");
    }
}

#[test]
fn sub_then_add_round_trips() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(3, case), 12);
        assert!(mats_close(&a.sub(&b).add(&b), &a, 1e-3), "case {case}");
    }
}

#[test]
fn scale_distributes_over_add() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(4, case), 10);
        let lhs = a.add(&b).scale(3.0);
        let rhs = a.scale(3.0).add(&b.scale(3.0));
        assert!(mats_close(&lhs, &rhs, 1e-3), "case {case}");
    }
}

#[test]
fn matmul_transpose_identity() {
    for case in 0..CASES {
        // (A Aᵀ)ᵀ == A Aᵀ  (symmetry of Gram matrices)
        let m = arb_mat(&mut case_rng(5, case), 10);
        let g = m.matmul_nt(&m);
        assert!(mats_close(&g, &g.transpose(), 1e-3), "case {case}");
    }
}

#[test]
fn matmul_tn_matches_materialized() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(6, case), 10);
        let lhs = m.matmul_tn(&m);
        let rhs = m.transpose().matmul(&m);
        assert!(mats_close(&lhs, &rhs, 1e-3), "case {case}");
    }
}

#[test]
fn softmax_rows_sum_to_one() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(7, case), 10);
        let s = m.softmax_rows();
        for r in s.row_sums() {
            assert!(approx_eq(r, 1.0, 1e-4), "case {case}: row sum {r}");
        }
    }
}

#[test]
fn relu_is_idempotent() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(8, case), 12);
        assert_eq!(m.relu().relu(), m.relu(), "case {case}");
    }
}

#[test]
fn l21_norm_triangle() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(9, case), 10);
        let lhs = a.add(&b).l21_norm();
        let rhs = a.l21_norm() + b.l21_norm();
        assert!(lhs <= rhs + 1e-2 * rhs.abs().max(1.0), "case {case}: {lhs} > {rhs}");
    }
}

#[test]
fn select_rows_matches_get() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let m = arb_mat(&mut rng, 8);
        let idx = vec![rng.index(m.rows())];
        let s = m.select_rows(&idx);
        assert_eq!(s.row(0), m.row(idx[0]), "case {case}");
    }
}

/// Every SIMD tier of every GEMM flavour agrees with the scalar reference
/// on awkward shapes: 1x1, single-row/column, dimensions that are not lane
/// multiples, and the empty inner product. Tolerance equality — lane tiers
/// may regroup additions — with the shapes kept small enough that 1e-3 is
/// far above the regrouping noise and far below any real bug.
#[test]
fn simd_gemm_tiers_match_scalar_on_awkward_shapes() {
    let mut shapes = vec![(1, 1, 1), (5, 1, 1), (1, 7, 1), (1, 1, 9), (6, 16, 32), (2, 3, 33)];
    for case in 0..24 {
        let mut rng = case_rng(20, case);
        shapes.push((1 + rng.index(17), 1 + rng.index(17), 1 + rng.index(17)));
    }
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        let mut rng = case_rng(21, case as u64);
        let a = rng.uniform(m, k, -10.0, 10.0);
        let b = rng.uniform(k, n, -10.0, 10.0);
        let reference = simd::with_simd_level(SimdLevel::Scalar, || {
            (a.matmul(&b), a.transpose().matmul_tn(&b), a.matmul_nt(&b.transpose()))
        });
        for level in simd::available_levels() {
            let got = simd::with_simd_level(level, || {
                (a.matmul(&b), a.transpose().matmul_tn(&b), a.matmul_nt(&b.transpose()))
            });
            for (tag, g, r) in [
                ("nn", &got.0, &reference.0),
                ("tn", &got.1, &reference.1),
                ("nt", &got.2, &reference.2),
            ] {
                assert!(
                    mats_close(g, r, 1e-3),
                    "case {case} ({m}x{k}x{n}) {tag} at {}",
                    level.name()
                );
            }
        }
    }
}

/// The empty inner product (k = 0) is all zeros at every tier.
#[test]
fn simd_gemm_tiers_handle_empty_inner_dim() {
    let a = DMat::zeros(3, 0);
    let b = DMat::zeros(0, 5);
    for level in simd::available_levels() {
        let out = simd::with_simd_level(level, || a.matmul(&b));
        assert_eq!(out.shape(), (3, 5), "shape at {}", level.name());
        assert!(out.as_slice().iter().all(|&v| v == 0.0), "zeros at {}", level.name());
    }
}

/// Non-finite inputs propagate identically at every tier: a NaN poisons
/// exactly its output row, an isolated +Inf (no cancellation possible)
/// saturates it.
#[test]
fn simd_gemm_tiers_propagate_nan_and_inf() {
    let ones_a = DMat::from_vec(3, 8, vec![1.0; 24]);
    let ones_b = DMat::from_vec(8, 5, vec![1.0; 40]);
    for bad in [f32::NAN, f32::INFINITY] {
        let mut a = ones_a.clone();
        a.set(1, 3, bad);
        for level in simd::available_levels() {
            let out = simd::with_simd_level(level, || a.matmul(&ones_b));
            for i in 0..3 {
                for j in 0..5 {
                    let v = out.get(i, j);
                    if i == 1 {
                        if bad.is_nan() {
                            assert!(v.is_nan(), "({i},{j}) at {}", level.name());
                        } else {
                            assert_eq!(v, f32::INFINITY, "({i},{j}) at {}", level.name());
                        }
                    } else {
                        assert_eq!(v, 8.0, "({i},{j}) at {}", level.name());
                    }
                }
            }
        }
    }
}

/// `matmul_nt` (gradient-path flavour) is bitwise thread-invariant at every
/// tier on shapes large enough to fan out to the pool.
#[test]
fn simd_matmul_nt_is_thread_invariant_per_level() {
    for case in 0..3u64 {
        let mut rng = case_rng(22, case);
        let a = rng.uniform(97 + case as usize, 150 + 37 * case as usize, -1.0, 1.0);
        let b = rng.uniform(83, 150 + 37 * case as usize, -1.0, 1.0);
        for level in simd::available_levels() {
            let one = simd::with_simd_level(level, || {
                mcond_par::with_thread_limit(1, || a.matmul_nt(&b))
            });
            let four = simd::with_simd_level(level, || {
                mcond_par::with_thread_limit(4, || a.matmul_nt(&b))
            });
            assert_eq!(
                one.as_slice(),
                four.as_slice(),
                "case {case} drifted at {}",
                level.name()
            );
        }
    }
}
