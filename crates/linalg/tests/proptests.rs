//! Property-style tests for the dense algebra substrate.
//!
//! Cases are drawn from the workspace's own seeded [`MatRng`] rather than
//! an external fuzzing crate so the build stays hermetic. Every property
//! runs over a fixed fan of per-case seeds; assertion messages carry the
//! case index so a failure replays deterministically.

use mcond_linalg::{approx_eq, DMat, MatRng};

const CASES: u64 = 64;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0xD0A1 ^ (salt << 32) ^ case)
}

fn arb_mat(rng: &mut MatRng, max_dim: usize) -> DMat {
    let r = 1 + rng.index(max_dim);
    let c = 1 + rng.index(max_dim);
    rng.uniform(r, c, -10.0, 10.0)
}

fn arb_mat_pair(rng: &mut MatRng, max_dim: usize) -> (DMat, DMat) {
    let r = 1 + rng.index(max_dim);
    let c = 1 + rng.index(max_dim);
    (rng.uniform(r, c, -10.0, 10.0), rng.uniform(r, c, -10.0, 10.0))
}

fn mats_close(a: &DMat, b: &DMat, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[test]
fn transpose_is_involutive() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(1, case), 12);
        assert_eq!(m.transpose().transpose(), m, "case {case}");
    }
}

#[test]
fn add_commutes() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(2, case), 12);
        assert!(mats_close(&a.add(&b), &b.add(&a), 1e-5), "case {case}");
    }
}

#[test]
fn sub_then_add_round_trips() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(3, case), 12);
        assert!(mats_close(&a.sub(&b).add(&b), &a, 1e-3), "case {case}");
    }
}

#[test]
fn scale_distributes_over_add() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(4, case), 10);
        let lhs = a.add(&b).scale(3.0);
        let rhs = a.scale(3.0).add(&b.scale(3.0));
        assert!(mats_close(&lhs, &rhs, 1e-3), "case {case}");
    }
}

#[test]
fn matmul_transpose_identity() {
    for case in 0..CASES {
        // (A Aᵀ)ᵀ == A Aᵀ  (symmetry of Gram matrices)
        let m = arb_mat(&mut case_rng(5, case), 10);
        let g = m.matmul_nt(&m);
        assert!(mats_close(&g, &g.transpose(), 1e-3), "case {case}");
    }
}

#[test]
fn matmul_tn_matches_materialized() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(6, case), 10);
        let lhs = m.matmul_tn(&m);
        let rhs = m.transpose().matmul(&m);
        assert!(mats_close(&lhs, &rhs, 1e-3), "case {case}");
    }
}

#[test]
fn softmax_rows_sum_to_one() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(7, case), 10);
        let s = m.softmax_rows();
        for r in s.row_sums() {
            assert!(approx_eq(r, 1.0, 1e-4), "case {case}: row sum {r}");
        }
    }
}

#[test]
fn relu_is_idempotent() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(8, case), 12);
        assert_eq!(m.relu().relu(), m.relu(), "case {case}");
    }
}

#[test]
fn l21_norm_triangle() {
    for case in 0..CASES {
        let (a, b) = arb_mat_pair(&mut case_rng(9, case), 10);
        let lhs = a.add(&b).l21_norm();
        let rhs = a.l21_norm() + b.l21_norm();
        assert!(lhs <= rhs + 1e-2 * rhs.abs().max(1.0), "case {case}: {lhs} > {rhs}");
    }
}

#[test]
fn select_rows_matches_get() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let m = arb_mat(&mut rng, 8);
        let idx = vec![rng.index(m.rows())];
        let s = m.select_rows(&idx);
        assert_eq!(s.row(0), m.row(idx[0]), "case {case}");
    }
}
