//! Property-based tests for the dense algebra substrate.

use mcond_linalg::{approx_eq, DMat};
use proptest::prelude::*;

fn arb_mat(max_dim: usize) -> impl Strategy<Value = DMat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| DMat::from_vec(r, c, data))
    })
}

fn arb_mat_pair(max_dim: usize) -> impl Strategy<Value = (DMat, DMat)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let a = proptest::collection::vec(-10.0f32..10.0, r * c);
        let b = proptest::collection::vec(-10.0f32..10.0, r * c);
        (a, b).prop_map(move |(da, db)| {
            (DMat::from_vec(r, c, da), DMat::from_vec(r, c, db))
        })
    })
}

fn mats_close(a: &DMat, b: &DMat, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| approx_eq(*x, *y, tol))
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in arb_mat(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_commutes((a, b) in arb_mat_pair(12)) {
        prop_assert!(mats_close(&a.add(&b), &b.add(&a), 1e-5));
    }

    #[test]
    fn sub_then_add_round_trips((a, b) in arb_mat_pair(12)) {
        prop_assert!(mats_close(&a.sub(&b).add(&b), &a, 1e-3));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in arb_mat_pair(10)) {
        let lhs = a.add(&b).scale(3.0);
        let rhs = a.scale(3.0).add(&b.scale(3.0));
        prop_assert!(mats_close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_transpose_identity(m in arb_mat(10)) {
        // (A Aᵀ)ᵀ == A Aᵀ  (symmetry of Gram matrices)
        let g = m.matmul_nt(&m);
        prop_assert!(mats_close(&g, &g.transpose(), 1e-3));
    }

    #[test]
    fn matmul_tn_matches_materialized(m in arb_mat(10)) {
        let lhs = m.matmul_tn(&m);
        let rhs = m.transpose().matmul(&m);
        prop_assert!(mats_close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_sum_to_one(m in arb_mat(10)) {
        let s = m.softmax_rows();
        for r in s.row_sums() {
            prop_assert!(approx_eq(r, 1.0, 1e-4));
        }
    }

    #[test]
    fn relu_is_idempotent(m in arb_mat(12)) {
        prop_assert_eq!(m.relu().relu(), m.relu());
    }

    #[test]
    fn l21_norm_triangle((a, b) in arb_mat_pair(10)) {
        let lhs = a.add(&b).l21_norm();
        let rhs = a.l21_norm() + b.l21_norm();
        prop_assert!(lhs <= rhs + 1e-2 * rhs.abs().max(1.0));
    }

    #[test]
    fn select_rows_matches_get(m in arb_mat(8), seed in 0usize..8) {
        let idx = vec![seed % m.rows()];
        let s = m.select_rows(&idx);
        prop_assert_eq!(s.row(0), m.row(idx[0]));
    }
}
