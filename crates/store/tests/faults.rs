//! Fault-injection sweep over the checkpoint container.
//!
//! The robustness contract: **every** truncation at every byte boundary and
//! **every** injected bit flip of a valid image must yield a typed
//! [`StoreError`] somewhere on the load path — never a panic, and never a
//! silently different payload. The sweep is exhaustive over the image the
//! container format produces, so a regression in any of the integrity
//! checks (magic, version, table CRC, bounds, payload CRCs, strict
//! end-of-file accounting) fails this suite immediately.

use mcond_store::codec::{self, ByteReader, ByteWriter};
use mcond_store::{corruption_sweep, CheckpointReader, CheckpointWriter, StoreError};

/// A small but structurally complete image: several sections of different
/// sizes, including an empty one.
fn sample_image() -> Vec<u8> {
    let mut dmat = ByteWriter::new();
    codec::encode_dmat(&mut dmat, &mcond_linalg::DMat::from_rows(&[&[1.5, -2.5], &[0.0, 4.0]]));
    let mut w = CheckpointWriter::new();
    w.add_section("features", dmat.into_bytes());
    w.add_section("empty", Vec::new());
    w.add_section("blob", (0u8..=63).collect());
    w.to_bytes()
}

/// Full load: parse the container, then CRC-verify and read every section.
/// Returns the payloads so the sweep can also prove no silent corruption.
fn load_all(image: Vec<u8>) -> Result<Vec<Vec<u8>>, StoreError> {
    let r = CheckpointReader::from_bytes(image)?;
    ["features", "empty", "blob"]
        .iter()
        .map(|name| r.section(name).map(<[u8]>::to_vec))
        .collect()
}

#[test]
fn pristine_image_loads() {
    let payloads = load_all(sample_image()).expect("pristine image must load");
    assert_eq!(payloads[2], (0u8..=63).collect::<Vec<u8>>());
}

/// The tentpole guarantee: the exhaustive mutation sweep never panics and
/// never silently succeeds with altered bytes.
#[test]
fn every_corruption_is_detected_or_harmless() {
    let image = sample_image();
    let pristine = load_all(image.clone()).unwrap();
    let mut checked = 0usize;
    for c in corruption_sweep(&image) {
        match load_all(c.bytes) {
            Err(_) => {} // typed error — the expected outcome
            Ok(payloads) => {
                // A mutation that still loads must be byte-identical —
                // anything else is a silently-wrong load.
                assert_eq!(payloads, pristine, "{} loaded with altered payloads", c.label);
                panic!("{} was not detected", c.label);
            }
        }
        checked += 1;
    }
    assert!(checked > image.len(), "sweep too small: {checked} mutations");
}

/// Truncations must be rejected already at container-open time — the strict
/// end-of-file accounting catches cuts even in the final payload, where no
/// section access would otherwise touch the missing bytes.
#[test]
fn truncations_fail_at_open() {
    let image = sample_image();
    for end in 0..image.len() {
        let r = CheckpointReader::from_bytes(image[..end].to_vec());
        assert!(r.is_err(), "truncate@{end} opened successfully");
    }
}

/// Payload damage is localised: a flip inside one section's payload leaves
/// the *other* sections readable (graceful degradation), while the damaged
/// one reports a checksum mismatch naming itself.
#[test]
fn payload_corruption_degrades_gracefully() {
    let image = sample_image();
    let pristine = CheckpointReader::from_bytes(image.clone()).unwrap();
    let ranges = pristine.payload_ranges();
    let (_, blob_range) = ranges.iter().find(|(n, _)| n == "blob").unwrap().clone();
    for offset in blob_range.clone() {
        let mut mutated = image.clone();
        mutated[offset] ^= 0x10;
        let r = CheckpointReader::from_bytes(mutated).expect("container still opens");
        match r.section("blob") {
            Err(StoreError::ChecksumMismatch { section }) => assert_eq!(section, "blob"),
            other => panic!("flip@{offset}: expected ChecksumMismatch, got {other:?}"),
        }
        assert!(r.section("features").is_ok(), "flip@{offset} leaked into `features`");
    }
}

/// Decoder totality below the CRC layer: even if a corrupt payload were
/// handed directly to the typed decoders (CRC bypassed), they return typed
/// errors, never panic. Sweeps one bit flip per byte and all truncations of
/// an encoded DMat.
#[test]
fn decoders_are_total_under_corruption()  {
    let mut w = ByteWriter::new();
    codec::encode_dmat(&mut w, &mcond_linalg::DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    let bytes = w.into_bytes();
    for end in 0..bytes.len() {
        let mut r = ByteReader::new(&bytes[..end], "dmat");
        // Either a decode error or a finish error; both are fine — only a
        // panic or a silent full success would be a bug.
        let decoded = codec::decode_dmat(&mut r);
        if decoded.is_ok() {
            assert!(r.finish().is_err(), "truncate@{end} decoded cleanly");
        }
    }
    for byte in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[byte] ^= 1 << (byte % 8);
        let mut r = ByteReader::new(&mutated, "dmat");
        // Flips in the f32 payload change values but stay structurally
        // valid — that's the CRC layer's job. Header flips must error.
        let _ = codec::decode_dmat(&mut r).map(|_| ());
    }
}

/// A corrupt section *count* cannot cause huge allocations or quadratic
/// table walks — it is rejected by the plausibility bound.
#[test]
fn hostile_section_count_is_rejected() {
    let mut image = sample_image();
    image[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    match CheckpointReader::from_bytes(image) {
        Err(StoreError::Malformed { .. } | StoreError::Truncated { .. }) => {}
        other => panic!("expected Malformed/Truncated, got {:?}", other.err()),
    }
}

/// Hostile in-payload lengths (e.g. a DMat claiming 2^60 rows) are rejected
/// before any allocation is sized from them.
#[test]
fn hostile_payload_lengths_are_rejected() {
    let mut w = ByteWriter::new();
    w.put_u64(1 << 60);
    w.put_u64(1 << 60);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes, "dmat");
    match codec::decode_dmat(&mut r) {
        Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "dmat"),
        other => panic!("expected Malformed, got {:?}", other.err()),
    }
}
