//! Round-trip property tests for the checkpoint codecs.
//!
//! Cases are drawn from the workspace's own seeded [`MatRng`] rather than
//! an external fuzzing crate so the build stays hermetic. Every property
//! runs over a fixed fan of per-case seeds; assertion messages carry the
//! case index so a failure replays deterministically.
//!
//! The contract under test is *bitwise* fidelity: whatever value goes in —
//! empty matrices, 0-row CSRs, `NaN` payloads, infinities, negative zero —
//! comes back with identical bits after encode → container → decode.

use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::Graph;
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::{Coo, Csr};
use mcond_store::codec::{self, ByteReader, ByteWriter};
use mcond_store::{CheckpointReader, CheckpointWriter};

const CASES: u64 = 64;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0x57_0E ^ (salt << 32) ^ case)
}

/// Random matrix, possibly 0-row / 0-col, salted with non-finite values.
fn arb_dmat(rng: &mut MatRng, max_dim: usize) -> DMat {
    let r = rng.index(max_dim + 1);
    let c = rng.index(max_dim + 1);
    let mut m = rng.uniform(r, c, -10.0, 10.0);
    let special = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, f32::MIN_POSITIVE];
    for v in m.as_mut_slice().iter_mut() {
        if *v > 9.0 {
            *v = special[(v.to_bits() as usize) % special.len()];
        }
    }
    m
}

/// Random CSR, possibly with zero rows, empty rows, and non-finite values.
fn arb_csr(rng: &mut MatRng, max_dim: usize) -> Csr {
    let rows = rng.index(max_dim + 1);
    let cols = 1 + rng.index(max_dim);
    let mut coo = Coo::new(rows, cols);
    for i in 0..rows {
        let deg = rng.index(cols + 1);
        for _ in 0..deg {
            let v = match rng.index(8) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => -0.0,
                _ => rng.uniform(1, 1, -5.0, 5.0).get(0, 0),
            };
            coo.push(i, rng.index(cols), v);
        }
    }
    coo.to_csr()
}

fn roundtrip_dmat(m: &DMat) -> DMat {
    let mut w = ByteWriter::new();
    codec::encode_dmat(&mut w, m);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes, "test");
    let out = codec::decode_dmat(&mut r).expect("decode_dmat");
    r.finish().expect("trailing bytes");
    out
}

fn roundtrip_csr(m: &Csr) -> Csr {
    let mut w = ByteWriter::new();
    codec::encode_csr(&mut w, m);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes, "test");
    let out = codec::decode_csr(&mut r).expect("decode_csr");
    r.finish().expect("trailing bytes");
    out
}

#[test]
fn dmat_round_trips_bitwise() {
    for case in 0..CASES {
        let m = arb_dmat(&mut case_rng(1, case), 12);
        assert!(roundtrip_dmat(&m).bit_eq(&m), "case {case}");
    }
}

#[test]
fn dmat_edge_shapes_round_trip() {
    for m in [
        DMat::zeros(0, 0),
        DMat::zeros(0, 5),
        DMat::zeros(5, 0),
        DMat::from_rows(&[&[f32::NAN, f32::INFINITY, -0.0]]),
    ] {
        assert!(roundtrip_dmat(&m).bit_eq(&m), "shape {:?}", m.shape());
    }
}

#[test]
fn csr_round_trips_bitwise() {
    for case in 0..CASES {
        let m = arb_csr(&mut case_rng(2, case), 10);
        assert!(roundtrip_csr(&m).bit_eq(&m), "case {case}");
    }
}

#[test]
fn csr_edge_shapes_round_trip() {
    for m in [Csr::empty(0, 1), Csr::empty(4, 3), Csr::eye(1)] {
        assert!(roundtrip_csr(&m).bit_eq(&m), "{}x{}", m.rows(), m.cols());
    }
}

#[test]
fn graph_round_trips_bitwise() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let n = 1 + rng.index(10);
        let classes = 1 + rng.index(4);
        let mut coo = Coo::new(n, n);
        for _ in 0..rng.index(2 * n + 1) {
            coo.push(rng.index(n), rng.index(n), rng.uniform(1, 1, 0.1, 2.0).get(0, 0));
        }
        let d = 1 + rng.index(6);
        let g = Graph::new(
            coo.to_csr(),
            rng.uniform(n, d, -3.0, 3.0),
            (0..n).map(|_| rng.index(classes)).collect(),
            classes,
        );
        let mut w = ByteWriter::new();
        codec::encode_graph(&mut w, &g);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "graph");
        let back = codec::decode_graph(&mut r).expect("decode_graph");
        r.finish().expect("trailing bytes");
        assert!(back.adj.bit_eq(&g.adj), "case {case}: adjacency");
        assert!(back.features.bit_eq(&g.features), "case {case}: features");
        assert_eq!(back.labels, g.labels, "case {case}: labels");
        assert_eq!(back.num_classes, g.num_classes, "case {case}: classes");
    }
}

#[test]
fn every_architecture_round_trips_bitwise() {
    for (case, kind) in (0..CASES).zip(GnnKind::ALL.into_iter().cycle()) {
        let mut rng = case_rng(4, case);
        let (din, hidden, dout) = (1 + rng.index(8), 1 + rng.index(8), 1 + rng.index(4));
        let model = GnnModel::new(kind, din, hidden, dout, 0xBEEF ^ case);
        let mut w = ByteWriter::new();
        codec::encode_model(&mut w, &model);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "model");
        let back = codec::decode_model(&mut r).expect("decode_model");
        r.finish().expect("trailing bytes");
        assert_eq!(back.kind(), model.kind(), "case {case}");
        assert_eq!(back.hops, model.hops, "case {case}");
        assert_eq!(back.alpha.to_bits(), model.alpha.to_bits(), "case {case}");
        assert_eq!(back.params().len(), model.params().len(), "case {case}");
        for (a, b) in back.params().iter().zip(model.params()) {
            assert!(a.bit_eq(b), "case {case} ({kind:?}): weights drifted");
        }
    }
}

/// Whole-container property: random multi-section checkpoints survive the
/// image round trip byte-for-byte.
#[test]
fn container_round_trips_random_sections() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let n_sections = 1 + rng.index(5);
        let mut w = CheckpointWriter::new();
        let mut expect = Vec::new();
        for s in 0..n_sections {
            let len = rng.index(200);
            let payload: Vec<u8> =
                (0..len).map(|i| (rng.index(256) ^ i) as u8).collect();
            let name = format!("sec{s}");
            w.add_section(&name, payload.clone());
            expect.push((name, payload));
        }
        let r = CheckpointReader::from_bytes(w.to_bytes()).expect("valid image");
        for (name, payload) in &expect {
            let got = r
                .section(Box::leak(name.clone().into_boxed_str()))
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(got, payload.as_slice(), "case {case}: section {name}");
        }
    }
}
