//! The typed error surface of the store.
//!
//! Every way a checkpoint can fail to load has its own variant, so callers
//! can distinguish "the file is from a newer build" from "the mapping
//! section is corrupt" and degrade accordingly (e.g. recompute the mapping
//! instead of crashing the server). Loading never panics on malformed
//! bytes — the fault-injection suite in `tests/faults.rs` enforces that.

use std::fmt;
use std::io;

/// Everything that can go wrong saving or loading a checkpoint.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open/read/write/rename).
    Io(io::Error),
    /// The file does not start with the `MCST` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the named structure is complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A CRC32 check failed; the named section's bytes are corrupt.
    ChecksumMismatch {
        /// Section name (`"header"` for the section table itself).
        section: String,
    },
    /// The checkpoint parses but lacks a required section.
    MissingSection {
        /// Name of the absent section.
        section: &'static str,
    },
    /// A section's payload is structurally invalid (bad lengths, column
    /// indices out of range, unknown architecture tag, …).
    Malformed {
        /// Section the payload belongs to.
        section: String,
        /// What was wrong.
        reason: String,
    },
    /// Sections are individually valid but disagree with each other
    /// (e.g. the mapping's column count does not index the synthetic
    /// nodes).
    ShapeMismatch {
        /// The violated cross-section invariant.
        reason: String,
    },
}

impl StoreError {
    /// The section this error is about, when it names one — lets callers
    /// fall back per-section (recompute a corrupt `M`, keep the rest).
    #[must_use]
    pub fn section(&self) -> Option<&str> {
        match self {
            StoreError::ChecksumMismatch { section } | StoreError::Malformed { section, .. } => {
                Some(section)
            }
            StoreError::MissingSection { section } => Some(section),
            _ => None,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a checkpoint file (bad MCST magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            StoreError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            StoreError::MissingSection { section } => {
                write!(f, "checkpoint is missing section `{section}`")
            }
            StoreError::Malformed { section, reason } => {
                write!(f, "malformed section `{section}`: {reason}")
            }
            StoreError::ShapeMismatch { reason } => {
                write!(f, "checkpoint sections disagree: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
