//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) computed
//! in-repo so the workspace stays dependency-free.
//!
//! CRC32 detects every single-bit error and every burst up to 32 bits —
//! exactly the corruption classes the fault-injection suite sweeps — while
//! costing one table lookup per byte.

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let base = b"mcond checkpoint payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut mutated = base.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
