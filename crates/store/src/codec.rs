//! Binary codecs for the workspace's value types.
//!
//! Everything is little-endian and length-prefixed. Encoders write into a
//! plain byte buffer; decoders are **total**: any byte string either
//! decodes or yields a typed [`StoreError`] — no panics, no partial
//! values. Floats round-trip bit-exactly (NaN payloads included), which is
//! what the round-trip property suite asserts.
//!
//! Layouts:
//!
//! ```text
//! DMat    u64 rows   u64 cols   f32*rows*cols row-major data
//! Csr     u64 rows   u64 cols   u64 nnz
//!         u64*rows row lengths  u32*nnz column indices  f32*nnz values
//! Graph   u64 classes  Csr adjacency  DMat features  u32*N labels
//! Model   u8 kind  u64 hops  f32 alpha  u64 n_params  DMat*n_params
//! ```

use crate::StoreError;
use mcond_gnn::{GnnKind, GnnModel};
use mcond_graph::Graph;
use mcond_linalg::DMat;
use mcond_sparse::Csr;

/// Append-only byte sink for section payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32` (bit-exact, NaN payloads preserved).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked cursor over a section payload. Every overrun or
/// structural inconsistency becomes a [`StoreError::Malformed`] naming the
/// section, never a panic.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> ByteReader<'a> {
    /// Wraps a section payload; `section` labels errors.
    #[must_use]
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        Self { buf, pos: 0, section }
    }

    fn malformed(&self, reason: impl Into<String>) -> StoreError {
        StoreError::Malformed { section: self.section.to_owned(), reason: reason.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.malformed(format!("unexpected end at byte {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `f32`.
    pub fn get_f32(&mut self) -> Result<f32, StoreError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that are
    /// impossible given the bytes left (each element costs ≥ 1 byte), so a
    /// hostile length can never trigger a huge allocation.
    pub fn get_len(&mut self, what: &str) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        let n = usize::try_from(v)
            .map_err(|_| self.malformed(format!("{what} count {v} overflows usize")))?;
        if n > self.buf.len() {
            return Err(self.malformed(format!(
                "{what} count {n} exceeds section size {}",
                self.buf.len()
            )));
        }
        Ok(n)
    }

    /// Reads `n` little-endian `f32`s.
    pub fn get_f32_vec(&mut self, n: usize) -> Result<Vec<f32>, StoreError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| self.malformed("length overflow"))?)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Reads `n` little-endian `u32`s.
    pub fn get_u32_vec(&mut self, n: usize) -> Result<Vec<u32>, StoreError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| self.malformed("length overflow"))?)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Asserts the payload is fully consumed (no trailing garbage).
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// --- DMat ------------------------------------------------------------------

/// Appends a dense matrix.
pub fn encode_dmat(w: &mut ByteWriter, m: &DMat) {
    w.put_u64(m.rows() as u64);
    w.put_u64(m.cols() as u64);
    for &v in m.as_slice() {
        w.put_f32(v);
    }
}

/// Reads a dense matrix.
///
/// # Errors
/// [`StoreError::Malformed`] on truncated or inconsistent payloads.
pub fn decode_dmat(r: &mut ByteReader<'_>) -> Result<DMat, StoreError> {
    let rows = r.get_len("DMat rows")?;
    let cols = r.get_len("DMat cols")?;
    let len = rows
        .checked_mul(cols)
        .ok_or_else(|| r.malformed(format!("DMat {rows}x{cols} overflows")))?;
    let data = r.get_f32_vec(len)?;
    Ok(DMat::from_vec(rows, cols, data))
}

// --- Csr -------------------------------------------------------------------

/// Appends a CSR matrix (row lengths, not raw indptr, so the decoder can
/// rebuild a guaranteed-monotonic indptr).
pub fn encode_csr(w: &mut ByteWriter, m: &Csr) {
    w.put_u64(m.rows() as u64);
    w.put_u64(m.cols() as u64);
    w.put_u64(m.nnz() as u64);
    for i in 0..m.rows() {
        w.put_u64(m.row_cols(i).len() as u64);
    }
    for i in 0..m.rows() {
        for &c in m.row_cols(i) {
            w.put_u32(c);
        }
    }
    for i in 0..m.rows() {
        for &v in m.row_vals(i) {
            w.put_f32(v);
        }
    }
}

/// Reads a CSR matrix, validating the structural invariants `Csr::from_raw`
/// would otherwise assert: row lengths summing to `nnz`, every column index
/// in bounds, sorted duplicate-free rows.
///
/// # Errors
/// [`StoreError::Malformed`] on any violation.
pub fn decode_csr(r: &mut ByteReader<'_>) -> Result<Csr, StoreError> {
    let rows = r.get_len("Csr rows")?;
    let cols_n = r.get_len("Csr cols")?;
    let nnz = r.get_len("Csr nnz")?;
    let mut indptr = Vec::with_capacity(rows + 1);
    indptr.push(0u64);
    let mut acc = 0u64;
    for i in 0..rows {
        let len = r.get_u64()?;
        acc = acc
            .checked_add(len)
            .ok_or_else(|| r.malformed(format!("row length overflow at row {i}")))?;
        indptr.push(acc);
    }
    if acc != nnz as u64 {
        return Err(r.malformed(format!("row lengths sum to {acc}, header says nnz = {nnz}")));
    }
    let cols = r.get_u32_vec(nnz)?;
    if let Some(&bad) = cols.iter().find(|&&c| c as usize >= cols_n) {
        return Err(r.malformed(format!("column index {bad} out of range ({cols_n} columns)")));
    }
    for i in 0..rows {
        let row = &cols[indptr[i] as usize..indptr[i + 1] as usize];
        if row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(r.malformed(format!("row {i} columns not strictly ascending")));
        }
    }
    let vals = r.get_f32_vec(nnz)?;
    Ok(Csr::from_raw(rows, cols_n, indptr, cols, vals))
}

// --- Graph -----------------------------------------------------------------

/// Appends an attributed graph (the synthetic triple `S = {A', X', Y'}`).
pub fn encode_graph(w: &mut ByteWriter, g: &Graph) {
    w.put_u64(g.num_classes as u64);
    encode_csr(w, &g.adj);
    encode_dmat(w, &g.features);
    for &y in &g.labels {
        w.put_u32(y as u32);
    }
}

/// Reads an attributed graph, validating every invariant `Graph::new`
/// asserts (square adjacency, row agreement, labels in range) so corrupt
/// bytes yield errors instead of downstream panics.
///
/// # Errors
/// [`StoreError::Malformed`] on any violation.
pub fn decode_graph(r: &mut ByteReader<'_>) -> Result<Graph, StoreError> {
    let classes = r.get_len("Graph classes")?;
    let adj = decode_csr(r)?;
    let features = decode_dmat(r)?;
    if adj.rows() != adj.cols() {
        return Err(r.malformed(format!("adjacency {}x{} is not square", adj.rows(), adj.cols())));
    }
    if features.rows() != adj.rows() {
        return Err(r.malformed(format!(
            "features have {} rows but the adjacency has {} nodes",
            features.rows(),
            adj.rows()
        )));
    }
    let n = adj.rows();
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(r.get_u32()? as usize);
    }
    if let Some(&bad) = labels.iter().find(|&&y| y >= classes) {
        return Err(r.malformed(format!("label {bad} out of range ({classes} classes)")));
    }
    Ok(Graph::new(adj, features, labels, classes))
}

// --- GnnModel --------------------------------------------------------------

/// Largest propagation depth a checkpoint may declare; anything above this
/// is a corrupt or hostile file, not a real model.
const MAX_HOPS: u64 = 64;

/// Appends a trained model (architecture tag + hyper-parameters + weights).
pub fn encode_model(w: &mut ByteWriter, m: &GnnModel) {
    w.put_u8(m.kind().code());
    w.put_u64(m.hops as u64);
    w.put_f32(m.alpha);
    w.put_u64(m.params().len() as u64);
    for p in m.params() {
        encode_dmat(w, p);
    }
}

/// Reads a trained model, validating the architecture tag, the parameter
/// count, and the per-architecture shape chain so `predict` on the restored
/// model can never index out of bounds.
///
/// # Errors
/// [`StoreError::Malformed`] on any violation.
pub fn decode_model(r: &mut ByteReader<'_>) -> Result<GnnModel, StoreError> {
    let code = r.get_u8()?;
    let kind = GnnKind::from_code(code)
        .ok_or_else(|| r.malformed(format!("unknown architecture tag {code}")))?;
    let hops = r.get_u64()?;
    if hops > MAX_HOPS {
        return Err(r.malformed(format!("implausible propagation depth {hops}")));
    }
    let alpha = r.get_f32()?;
    if !alpha.is_finite() {
        return Err(r.malformed(format!("non-finite teleport probability {alpha}")));
    }
    let n_params = r.get_len("model params")?;
    if n_params != kind.param_count() {
        return Err(r.malformed(format!(
            "{} expects {} parameter matrices, found {n_params}",
            kind.name(),
            kind.param_count()
        )));
    }
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        params.push(decode_dmat(r)?);
    }
    validate_model_shapes(kind, &params).map_err(|reason| r.malformed(reason))?;
    #[allow(clippy::cast_possible_truncation)]
    Ok(GnnModel::from_parts(kind, params, hops as usize, alpha))
}

/// Checks the weights-then-biases shape chain of each architecture.
fn validate_model_shapes(kind: GnnKind, p: &[DMat]) -> Result<(), String> {
    let bias = |b: &DMat, cols: usize, name: &str| {
        if b.shape() == (1, cols) {
            Ok(())
        } else {
            Err(format!("{name} bias must be 1x{cols}, found {}x{}", b.rows(), b.cols()))
        }
    };
    match kind {
        GnnKind::Sgc => bias(&p[1], p[0].cols(), "output"),
        GnnKind::Gcn | GnnKind::Appnp => {
            bias(&p[1], p[0].cols(), "hidden")?;
            if p[2].rows() != p[0].cols() {
                return Err(format!(
                    "layer-2 weight expects {} input rows, found {}",
                    p[0].cols(),
                    p[2].rows()
                ));
            }
            bias(&p[3], p[2].cols(), "output")
        }
        GnnKind::Sage | GnnKind::Cheby => {
            if p[1].shape() != p[0].shape() {
                return Err("layer-1 weight pair shapes disagree".to_owned());
            }
            bias(&p[2], p[0].cols(), "hidden")?;
            if p[3].rows() != p[0].cols() {
                return Err(format!(
                    "layer-2 weight expects {} input rows, found {}",
                    p[0].cols(),
                    p[3].rows()
                ));
            }
            if p[4].shape() != p[3].shape() {
                return Err("layer-2 weight pair shapes disagree".to_owned());
            }
            bias(&p[5], p[3].cols(), "output")
        }
    }
}
