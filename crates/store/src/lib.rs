//! Versioned, integrity-checked persistence for condensed MCond artifacts.
//!
//! A checkpoint is a single `MCST` container file holding named binary
//! sections — the condensed graph `S = {A', X', Y'}`, the sparsified
//! mapping `M`, and the trained GNN weights — each guarded by an in-repo
//! CRC32 and written atomically (temp file + rename), so a crashed save
//! never leaves a torn file and a corrupted file is always detected as a
//! typed [`StoreError`], never a panic or a silently-wrong load.
//!
//! Layering: this crate owns the *format* (container + per-type codecs).
//! The `mcond-core` crate owns the *bundle* semantics (`Checkpoint` with
//! `save`/`load` and `InductiveServer::from_checkpoint`), so the format
//! stays reusable for other artifact kinds.
//!
//! # Example
//! ```
//! use mcond_store::codec::{self, ByteReader, ByteWriter};
//! use mcond_store::{CheckpointReader, CheckpointWriter};
//! use mcond_linalg::DMat;
//!
//! let x = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let mut payload = ByteWriter::new();
//! codec::encode_dmat(&mut payload, &x);
//! let mut w = CheckpointWriter::new();
//! w.add_section("features", payload.into_bytes());
//! let image = w.to_bytes();
//!
//! let r = CheckpointReader::from_bytes(image).unwrap();
//! let mut cursor = ByteReader::new(r.section("features").unwrap(), "features");
//! let back = codec::decode_dmat(&mut cursor).unwrap();
//! cursor.finish().unwrap();
//! assert!(back.bit_eq(&x));
//! ```

pub mod codec;
mod crc32;
mod error;
pub mod fault;
mod file;

pub use crc32::crc32;
pub use error::StoreError;
pub use fault::{bit_flips, corruption_sweep, truncations, Corruption};
pub use file::{CheckpointReader, CheckpointWriter, FORMAT_VERSION, MAGIC};
