//! The `MCST` checkpoint container: magic + format version + CRC-guarded
//! section table + CRC-guarded payloads, written atomically.
//!
//! ```text
//! [0..4)    magic  b"MCST"
//! [4..8)    u32    format version (currently 1)
//! [8..12)   u32    section count
//! [12..16)  u32    CRC32 of the section table bytes
//! table     per section:
//!             u8  name length   name bytes (ASCII)
//!             u64 payload offset (absolute)   u64 payload length
//!             u32 CRC32 of the payload
//! payloads  back-to-back, ending exactly at end-of-file
//! ```
//!
//! Every byte of the file is covered by a check: the fixed header fields by
//! explicit comparisons, the table by its own CRC, and each payload by its
//! table entry's CRC — so any single-bit flip or truncation is detected and
//! reported as a typed [`StoreError`] (the fault-injection suite sweeps
//! exactly these mutations). Writes go through a temp file in the target
//! directory followed by an atomic rename, so a crash mid-save can never
//! leave a torn checkpoint under the final name.

use crate::crc32::crc32;
use crate::StoreError;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File magic.
pub const MAGIC: [u8; 4] = *b"MCST";
/// Current format version. Bump on any layout change; readers reject
/// versions they do not understand.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed-size prefix before the section table.
const FIXED_HEADER: usize = 16;
/// Upper bound on the section count — far above any real checkpoint, low
/// enough that a corrupt count cannot cause pathological table parsing.
const MAX_SECTIONS: u32 = 4096;

/// Accumulates named sections and serialises them into one checkpoint
/// image.
#[derive(Default)]
pub struct CheckpointWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointWriter {
    /// An empty checkpoint.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named section.
    ///
    /// # Panics
    /// Panics on empty, non-ASCII, over-long (> 255 bytes) or duplicate
    /// names — these are programming errors, not data errors.
    pub fn add_section(&mut self, name: &str, payload: Vec<u8>) {
        assert!(
            !name.is_empty() && name.len() <= 255 && name.is_ascii(),
            "section name must be 1..=255 ASCII bytes"
        );
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section name `{name}`"
        );
        self.sections.push((name.to_owned(), payload));
    }

    /// Serialises the checkpoint into its on-disk image.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_len: usize =
            self.sections.iter().map(|(name, _)| 1 + name.len() + 8 + 8 + 4).sum();
        let payload_base = FIXED_HEADER + table_len;

        let mut table = Vec::with_capacity(table_len);
        let mut offset = payload_base as u64;
        for (name, payload) in &self.sections {
            table.push(name.len() as u8);
            table.extend_from_slice(name.as_bytes());
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }

        let total = payload_base + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&table).to_le_bytes());
        out.extend_from_slice(&table);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename in
    /// the same directory) and fsyncs before the rename, so a crash during
    /// the save leaves either the previous file or the complete new one —
    /// never a torn image. Returns the number of bytes written.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, StoreError> {
        let start = Instant::now();
        let bytes = self.to_bytes();
        let tmp = tmp_path(path);
        let result = (|| -> Result<(), StoreError> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result?;
        mcond_obs::counter_add("store.save.bytes", bytes.len() as u64);
        mcond_obs::histogram_record("store.save.ms", start.elapsed().as_secs_f64() * 1e3);
        mcond_obs::emit_snapshot("store.save");
        Ok(bytes.len() as u64)
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(|| "checkpoint".into(), ToOwned::to_owned);
    name.push(".tmp");
    path.with_file_name(name)
}

#[derive(Debug)]
struct SectionEntry {
    name: String,
    range: Range<usize>,
    crc: u32,
}

/// A parsed checkpoint image. Construction validates the header, the
/// section-table CRC, and every payload's bounds; payload CRCs are checked
/// on access, so one corrupt section still lets callers read the others.
#[derive(Debug)]
pub struct CheckpointReader {
    data: Vec<u8>,
    sections: Vec<SectionEntry>,
    table_end: usize,
}

impl CheckpointReader {
    /// Reads and parses the checkpoint at `path`.
    ///
    /// # Errors
    /// Any [`StoreError`] variant; see [`CheckpointReader::from_bytes`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let data = std::fs::read(path)?;
        mcond_obs::counter_add("store.load.bytes", data.len() as u64);
        Self::from_bytes(data)
    }

    /// Parses a checkpoint image already in memory.
    ///
    /// # Errors
    /// [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] /
    /// [`StoreError::Truncated`] / [`StoreError::ChecksumMismatch`] (with
    /// section `"header"`) / [`StoreError::Malformed`] on structural
    /// damage. Never panics, whatever the bytes.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, StoreError> {
        if data.len() < FIXED_HEADER {
            return Err(StoreError::Truncated { context: "header" });
        }
        if data[0..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
        if count > MAX_SECTIONS {
            return Err(StoreError::Malformed {
                section: "header".to_owned(),
                reason: format!("implausible section count {count}"),
            });
        }
        let table_crc = u32::from_le_bytes([data[12], data[13], data[14], data[15]]);

        let mut pos = FIXED_HEADER;
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = *data.get(pos).ok_or(StoreError::Truncated { context: "section table" })?
                as usize;
            pos += 1;
            let entry_end = pos + name_len + 8 + 8 + 4;
            if name_len == 0 || entry_end > data.len() {
                return Err(StoreError::Truncated { context: "section table" });
            }
            let name = std::str::from_utf8(&data[pos..pos + name_len])
                .ok()
                .filter(|n| n.is_ascii())
                .ok_or_else(|| StoreError::Malformed {
                    section: "header".to_owned(),
                    reason: "non-ASCII section name".to_owned(),
                })?
                .to_owned();
            pos += name_len;
            let u64_at = |p: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&data[p..p + 8]);
                u64::from_le_bytes(b)
            };
            let offset = u64_at(pos);
            let len = u64_at(pos + 8);
            let crc = u32::from_le_bytes([data[pos + 16], data[pos + 17], data[pos + 18], data[pos + 19]]);
            pos += 20;
            sections.push((name, offset, len, crc));
        }
        let table_end = pos;
        if crc32(&data[FIXED_HEADER..table_end]) != table_crc {
            return Err(StoreError::ChecksumMismatch { section: "header".to_owned() });
        }

        let mut parsed = Vec::with_capacity(sections.len());
        let mut expected_end = table_end;
        for (name, offset, len, crc) in sections {
            if parsed.iter().any(|s: &SectionEntry| s.name == name) {
                return Err(StoreError::Malformed {
                    section: "header".to_owned(),
                    reason: format!("duplicate section `{name}`"),
                });
            }
            let (start, end) = usize::try_from(offset)
                .ok()
                .and_then(|s| usize::try_from(len).ok().and_then(|l| s.checked_add(l).map(|e| (s, e))))
                .ok_or_else(|| StoreError::Malformed {
                    section: name.clone(),
                    reason: "payload extent overflows".to_owned(),
                })?;
            if start < table_end {
                return Err(StoreError::Malformed {
                    section: name.clone(),
                    reason: "payload overlaps the header".to_owned(),
                });
            }
            if end > data.len() {
                return Err(StoreError::Truncated { context: "section payload" });
            }
            expected_end = expected_end.max(end);
            parsed.push(SectionEntry { name, range: start..end, crc });
        }
        if expected_end != data.len() {
            return Err(StoreError::Malformed {
                section: "header".to_owned(),
                reason: format!(
                    "file is {} bytes but sections end at {expected_end}",
                    data.len()
                ),
            });
        }
        Ok(Self { data, sections: parsed, table_end })
    }

    /// Names of the stored sections, in file order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Byte ranges of each section payload within the image — the hook the
    /// fault-injection helper uses to aim one bit flip at every section.
    #[must_use]
    pub fn payload_ranges(&self) -> Vec<(String, Range<usize>)> {
        self.sections.iter().map(|s| (s.name.clone(), s.range.clone())).collect()
    }

    /// End of the header + section table region (payloads start here).
    #[must_use]
    pub fn header_len(&self) -> usize {
        self.table_end
    }

    /// A section's payload, CRC-verified on every call.
    ///
    /// # Errors
    /// [`StoreError::MissingSection`] when absent;
    /// [`StoreError::ChecksumMismatch`] naming the section when its bytes
    /// are corrupt — other sections of the same file remain readable, which
    /// is what lets callers recompute just the damaged piece.
    pub fn section(&self, name: &'static str) -> Result<&[u8], StoreError> {
        let entry = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or(StoreError::MissingSection { section: name })?;
        let payload = &self.data[entry.range.clone()];
        if crc32(payload) != entry.crc {
            return Err(StoreError::ChecksumMismatch { section: name.to_owned() });
        }
        Ok(payload)
    }

    /// CRC-verifies **every** section payload up front, not just the ones a
    /// decoder happens to touch — the validated-load path a hot-swap server
    /// runs before staging a checkpoint, so a bundle with a corrupt
    /// trailing section is rejected before any swap is attempted.
    ///
    /// # Errors
    /// [`StoreError::ChecksumMismatch`] naming the first damaged section.
    pub fn verify_sections(&self) -> Result<(), StoreError> {
        for entry in &self.sections {
            if crc32(&self.data[entry.range.clone()]) != entry.crc {
                return Err(StoreError::ChecksumMismatch { section: entry.name.clone() });
            }
        }
        Ok(())
    }

    /// A short, stable fingerprint of the image content, derived from the
    /// section names and their payload CRCs. Two bundles with identical
    /// payloads share an id regardless of when or where they were written;
    /// serving layers stamp it on responses (`x-mcond-epoch` metadata) so
    /// operators can tell *which* checkpoint answered. Collision-resistant
    /// enough for fleet bookkeeping, not cryptographic.
    #[must_use]
    pub fn content_id(&self) -> String {
        let mut acc = Vec::new();
        for entry in &self.sections {
            acc.extend_from_slice(entry.name.as_bytes());
            acc.push(0);
            acc.extend_from_slice(&entry.crc.to_le_bytes());
            acc.extend_from_slice(&(entry.range.len() as u64).to_le_bytes());
        }
        format!("{:08x}", crc32(&acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointWriter {
        let mut w = CheckpointWriter::new();
        w.add_section("alpha", vec![1, 2, 3, 4, 5]);
        w.add_section("beta", Vec::new());
        w.add_section("gamma", vec![0xFF; 64]);
        w
    }

    #[test]
    fn image_round_trips() {
        let image = sample().to_bytes();
        let r = CheckpointReader::from_bytes(image).unwrap();
        assert_eq!(r.section_names(), vec!["alpha", "beta", "gamma"]);
        assert_eq!(r.section("alpha").unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(r.section("beta").unwrap(), &[] as &[u8]);
        assert_eq!(r.section("gamma").unwrap(), &[0xFF; 64]);
    }

    #[test]
    fn file_round_trips_through_atomic_write() {
        let path = std::env::temp_dir().join("mcond_store_file_roundtrip.mcst");
        let written = sample().write_atomic(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let r = CheckpointReader::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(r.section("alpha").unwrap(), &[1, 2, 3, 4, 5]);
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn missing_section_is_typed() {
        let r = CheckpointReader::from_bytes(sample().to_bytes()).unwrap();
        match r.section("delta") {
            Err(StoreError::MissingSection { section: "delta" }) => {}
            other => panic!("expected MissingSection, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_reports_its_section_and_leaves_others_readable() {
        let mut image = sample().to_bytes();
        let r = CheckpointReader::from_bytes(image.clone()).unwrap();
        let ranges = r.payload_ranges();
        let (_, alpha_range) = ranges.iter().find(|(n, _)| n == "alpha").unwrap().clone();
        image[alpha_range.start] ^= 0x01;
        let r = CheckpointReader::from_bytes(image).unwrap();
        match r.section("alpha") {
            Err(StoreError::ChecksumMismatch { section }) => assert_eq!(section, "alpha"),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // Degraded, not dead: the undamaged sections still load.
        assert_eq!(r.section("gamma").unwrap(), &[0xFF; 64]);
    }

    #[test]
    fn verify_sections_catches_damage_the_decoder_would_skip() {
        let r = CheckpointReader::from_bytes(sample().to_bytes()).unwrap();
        r.verify_sections().unwrap();
        // Corrupt the *last* section — a decoder that only reads "alpha"
        // would never notice, but a validated load must.
        let mut image = sample().to_bytes();
        let ranges = CheckpointReader::from_bytes(image.clone()).unwrap().payload_ranges();
        let (_, gamma) = ranges.iter().find(|(n, _)| n == "gamma").unwrap().clone();
        image[gamma.start] ^= 0x80;
        let r = CheckpointReader::from_bytes(image).unwrap();
        match r.verify_sections() {
            Err(StoreError::ChecksumMismatch { section }) => assert_eq!(section, "gamma"),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn content_id_is_stable_for_identical_payloads_and_shifts_on_change() {
        let a = CheckpointReader::from_bytes(sample().to_bytes()).unwrap().content_id();
        let b = CheckpointReader::from_bytes(sample().to_bytes()).unwrap().content_id();
        assert_eq!(a, b, "same payloads, same id");
        assert_eq!(a.len(), 8, "compact hex id");
        let mut other = CheckpointWriter::new();
        other.add_section("alpha", vec![1, 2, 3, 4, 6]);
        other.add_section("beta", Vec::new());
        other.add_section("gamma", vec![0xFF; 64]);
        let c = CheckpointReader::from_bytes(other.to_bytes()).unwrap().content_id();
        assert_ne!(a, c, "one changed byte moves the id");
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut image = sample().to_bytes();
        image[0] = b'X';
        assert!(matches!(
            CheckpointReader::from_bytes(image).unwrap_err(),
            StoreError::BadMagic
        ));
        let mut image = sample().to_bytes();
        image[4] = 99;
        assert!(matches!(
            CheckpointReader::from_bytes(image).unwrap_err(),
            StoreError::UnsupportedVersion(99)
        ));
    }
}
