//! Fault-injection helpers for the checkpoint format.
//!
//! The robustness contract is: **every** truncation and **every** single-bit
//! flip of a valid checkpoint image must surface as a typed [`StoreError`]
//! — never a panic, never a silently-wrong load. These helpers enumerate
//! exactly those mutations so test suites (and the CI smoke step) can sweep
//! them exhaustively. They are part of the public API, not `#[cfg(test)]`,
//! so downstream crates (core's e2e golden test) can run the same sweep
//! over real condensed checkpoints.
//!
//! [`StoreError`]: crate::StoreError

use crate::file::CheckpointReader;

/// One corrupted variant of a checkpoint image.
pub struct Corruption {
    /// Human-readable description for assertion messages,
    /// e.g. `"truncate@17"` or `"bitflip@42:3 (section `model`)"`.
    pub label: String,
    /// The mutated image.
    pub bytes: Vec<u8>,
}

/// Every strict prefix of `image`: truncation at each byte boundary from 0
/// to `len - 1`. Lazy — prefixes are materialised one at a time, so sweeping
/// a large checkpoint stays O(n) peak memory.
pub fn truncations(image: &[u8]) -> impl Iterator<Item = Corruption> + '_ {
    (0..image.len()).map(|end| Corruption {
        label: format!("truncate@{end}"),
        bytes: image[..end].to_vec(),
    })
}

/// Single-bit flips covering the whole image: every bit of the header and
/// section table (where one flip can redirect offsets or lengths), plus one
/// flip per byte of every payload. The per-byte payload coverage keeps the
/// sweep O(8·n) while still exercising each CRC-protected region at every
/// offset.
pub fn bit_flips(image: &[u8]) -> impl Iterator<Item = Corruption> + '_ {
    let header_len = CheckpointReader::from_bytes(image.to_vec())
        .map(|r| r.header_len())
        .unwrap_or(image.len());
    (0..image.len() * 8).filter_map(move |i| {
        let (byte, bit) = (i / 8, i % 8);
        // Exhaustive over the header/table; one bit per byte in payloads.
        if byte >= header_len && bit != usize::from(image[byte]) % 8 {
            return None;
        }
        let region = if byte < header_len { "header" } else { "payload" };
        let mut bytes = image.to_vec();
        bytes[byte] ^= 1 << bit;
        Some(Corruption { label: format!("bitflip@{byte}:{bit} ({region})"), bytes })
    })
}

/// The full sweep: all truncations, then all bit flips.
pub fn corruption_sweep(image: &[u8]) -> impl Iterator<Item = Corruption> + '_ {
    truncations(image).chain(bit_flips(image))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::CheckpointWriter;

    fn sample_image() -> Vec<u8> {
        let mut w = CheckpointWriter::new();
        w.add_section("a", vec![10, 20, 30]);
        w.add_section("b", vec![40; 16]);
        w.to_bytes()
    }

    #[test]
    fn sweep_covers_truncations_and_flips() {
        let image = sample_image();
        let n_trunc = truncations(&image).count();
        assert_eq!(n_trunc, image.len());
        let n_flips = bit_flips(&image).count();
        assert!(n_flips >= image.len(), "at least one flip per byte");
        assert_eq!(corruption_sweep(&image).count(), n_trunc + n_flips);
    }

    #[test]
    fn every_mutation_changes_the_image() {
        let image = sample_image();
        for c in corruption_sweep(&image) {
            assert_ne!(c.bytes, image, "{} left the image unchanged", c.label);
        }
    }
}
