//! Dense algebra and activation ops.

use crate::tape::{Op, Tape, Var};
use mcond_linalg::DMat;
use std::sync::Arc;

impl Tape {
    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::MatMul(a.0, b.0), rg, None)
    }

    /// `a + b` (element-wise, equal shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::Add(a.0, b.0), rg, None)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::Sub(a.0, b.0), rg, None)
    }

    /// `a ⊙ b` (Hadamard).
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::Hadamard(a.0, b.0), rg, None)
    }

    /// `c · a` for a compile-time constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).scale(c);
        let rg = self.rg(a.0);
        self.push(value, Op::ScaleConst(a.0, c), rg, None)
    }

    /// `a + c` element-wise for a constant `c`.
    pub fn add_const(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|v| v + c);
        let rg = self.rg(a.0);
        self.push(value, Op::AddConst(a.0, c), rg, None)
    }

    /// `max(a, 0)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).relu();
        let rg = self.rg(a.0);
        self.push(value, Op::Relu(a.0), rg, None)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).sigmoid();
        let rg = self.rg(a.0);
        self.push(value, Op::Sigmoid(a.0), rg, None)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let rg = self.rg(a.0);
        self.push(value, Op::Tanh(a.0), rg, None)
    }

    /// `aᵀ`.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        let rg = self.rg(a.0);
        self.push(value, Op::Transpose(a.0), rg, None)
    }

    /// `[a; b]` — vertical concatenation.
    pub fn vstack(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).vstack(self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::VStack(a.0, b.0), rg, None)
    }

    /// `[a, b]` — horizontal concatenation.
    pub fn hstack(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hstack(self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::HStack(a.0, b.0), rg, None)
    }

    /// Rows `lo..hi` of `a`.
    pub fn slice_rows(&mut self, a: Var, lo: usize, hi: usize) -> Var {
        let value = self.value(a).slice_rows(lo, hi);
        let rg = self.rg(a.0);
        self.push(value, Op::SliceRows(a.0, lo, hi), rg, None)
    }

    /// Row gather of `a` by `indices` (duplicates allowed).
    pub fn select_rows(&mut self, a: Var, indices: Arc<Vec<usize>>) -> Var {
        let value = self.value(a).select_rows(&indices);
        let rg = self.rg(a.0);
        self.push(value, Op::SelectRows(a.0, indices), rg, None)
    }

    /// Adds a `1 x d` bias row (`bias`) to every row of `a`.
    ///
    /// # Panics
    /// Panics when `bias` is not `1 x a.cols()`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let b = self.value(bias);
        assert_eq!(b.rows(), 1, "add_row_broadcast: bias must be a single row");
        let value = self.value(a).add_row_broadcast(b.row(0));
        let rg = self.rg(a.0) || self.rg(bias.0);
        self.push(value, Op::AddRowBroadcast(a.0, bias.0), rg, None)
    }

    /// Row-sum normalisation `Y_ij = X_ij / Σ_k X_ik` (zero rows preserved) —
    /// the normalisation core of Eq. (15).
    pub fn div_row_sum(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let sums = DMat::from_vec(x.rows(), 1, x.row_sums());
        let mut value = x.clone();
        for i in 0..value.rows() {
            let s = sums.get(i, 0);
            if s != 0.0 {
                for v in value.row_mut(i) {
                    *v /= s;
                }
            }
        }
        let rg = self.rg(a.0);
        self.push(value, Op::DivRowSum(a.0), rg, Some(sums))
    }

    /// Scalar mean of all entries.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = DMat::from_vec(1, 1, vec![self.value(a).mean()]);
        let rg = self.rg(a.0);
        self.push(value, Op::MeanAll(a.0), rg, None)
    }
}
