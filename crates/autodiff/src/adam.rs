//! The Adam optimizer (Kingma & Ba), as used for all trainable pieces in the
//! paper (relay GNN weights, synthetic features `X'`, MLP_Φ, mapping `M`).

use mcond_linalg::DMat;

/// Adam state for one parameter tensor.
///
/// Keep one `Adam` per parameter and call [`Adam::step`] with the parameter
/// and its freshly computed gradient each iteration.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: DMat,
    v: DMat,
}

impl Adam {
    /// Standard Adam with β₁ = 0.9, β₂ = 0.999, ε = 1e-8, no weight decay.
    #[must_use]
    pub fn new(lr: f32, rows: usize, cols: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: DMat::zeros(rows, cols),
            v: DMat::zeros(rows, cols),
        }
    }

    /// Adds L2 weight decay (added to the gradient, classic Adam style).
    #[must_use]
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Overrides the learning rate (e.g. for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// One Adam update of `param` given `grad`.
    ///
    /// # Panics
    /// Panics when shapes disagree with the state.
    pub fn step(&mut self, param: &mut DMat, grad: &DMat) {
        assert_eq!(param.shape(), self.m.shape(), "Adam::step: parameter shape changed");
        assert_eq!(param.shape(), grad.shape(), "Adam::step: gradient shape mismatch");
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let p = param.as_mut_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        for i in 0..p.len() {
            let g = grad.as_slice()[i] + self.weight_decay * p[i];
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Resets the moment estimates and step counter (used between outer
    /// loops of the alternating optimisation).
    pub fn reset(&mut self) {
        self.t = 0;
        self.m.map_assign(|_| 0.0);
        self.v.map_assign(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)², gradient 2(x - 3).
    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = DMat::from_vec(1, 1, vec![0.0]);
        let mut opt = Adam::new(0.1, 1, 1);
        for _ in 0..500 {
            let g = DMat::from_vec(1, 1, vec![2.0 * (x.get(0, 0) - 3.0)]);
            opt.step(&mut x, &g);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-3, "got {}", x.get(0, 0));
    }

    #[test]
    fn first_step_moves_by_lr() {
        // With bias correction, |Δx| == lr on the first step (for any g ≠ 0).
        let mut x = DMat::from_vec(1, 1, vec![1.0]);
        let mut opt = Adam::new(0.05, 1, 1);
        opt.step(&mut x, &DMat::from_vec(1, 1, vec![123.0]));
        assert!((x.get(0, 0) - (1.0 - 0.05)).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut x = DMat::from_vec(1, 1, vec![10.0]);
        let mut opt = Adam::new(0.1, 1, 1).with_weight_decay(0.1);
        for _ in 0..100 {
            opt.step(&mut x, &DMat::zeros(1, 1));
        }
        assert!(x.get(0, 0) < 10.0);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut x = DMat::from_vec(1, 1, vec![0.0]);
        let mut opt = Adam::new(0.1, 1, 1);
        opt.step(&mut x, &DMat::from_vec(1, 1, vec![1.0]));
        opt.reset();
        let before = x.get(0, 0);
        // After reset, a first step again moves by exactly lr.
        opt.step(&mut x, &DMat::from_vec(1, 1, vec![5.0]));
        assert!((x.get(0, 0) - (before - 0.1)).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut x = DMat::zeros(2, 2);
        let mut opt = Adam::new(0.1, 2, 2);
        opt.step(&mut x, &DMat::zeros(1, 1));
    }
}
