//! Finite-difference gradient checking.
//!
//! Every op's adjoint rule is verified against a central-difference
//! approximation. The checker is public so downstream crates can validate
//! their composite losses (the condensation objectives do exactly that).

use crate::{Tape, Var};
use mcond_linalg::DMat;

/// Result of a gradient check: the worst relative error observed.
#[derive(Clone, Copy, Debug)]
pub struct CheckReport {
    /// Maximum relative error across all checked entries.
    pub max_rel_err: f32,
    /// Number of entries compared.
    pub entries: usize,
}

/// Compares the analytic gradient of `build`'s scalar output w.r.t. a
/// parameter against central finite differences.
///
/// `build` receives a fresh tape and the current parameter value, records a
/// graph, and returns `(param_var, loss_var)`. The parameter is perturbed
/// entry-by-entry with step `h`, so keep it small (≤ a few hundred entries).
///
/// # Panics
/// Panics when `build` returns a non-scalar loss.
#[must_use]
pub fn check_gradient(
    param0: &DMat,
    h: f32,
    build: impl Fn(&mut Tape, DMat) -> (Var, Var),
) -> CheckReport {
    // Analytic gradient.
    let mut tape = Tape::new();
    let (p, loss) = build(&mut tape, param0.clone());
    let grads = tape.backward(loss);
    let analytic = grads
        .get(p)
        .cloned()
        .unwrap_or_else(|| DMat::zeros(param0.rows(), param0.cols()));

    let eval = |param: DMat| -> f32 {
        let mut t = Tape::new();
        let (_, l) = build(&mut t, param);
        t.scalar(l)
    };

    let mut max_rel = 0.0f32;
    for i in 0..param0.rows() {
        for j in 0..param0.cols() {
            let mut plus = param0.clone();
            plus.set(i, j, plus.get(i, j) + h);
            let mut minus = param0.clone();
            minus.set(i, j, minus.get(i, j) - h);
            let numeric = (eval(plus) - eval(minus)) / (2.0 * h);
            let a = analytic.get(i, j);
            // f32 central differences carry ~1e-4 absolute noise; the 1e-2
            // denominator floor keeps that noise from dominating entries
            // whose true gradient is tiny.
            let denom = a.abs().max(numeric.abs()).max(1e-2);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel {
                max_rel = rel;
            }
        }
    }
    CheckReport { max_rel_err: max_rel, entries: param0.len() }
}

/// Asserts the analytic gradient matches finite differences within `tol`.
///
/// # Panics
/// Panics (with the worst relative error) when the check fails.
pub fn assert_gradients_match(
    param0: &DMat,
    h: f32,
    tol: f32,
    build: impl Fn(&mut Tape, DMat) -> (Var, Var),
) {
    let report = check_gradient(param0, h, build);
    assert!(
        report.max_rel_err <= tol,
        "gradient check failed: max relative error {} > {tol} over {} entries",
        report.max_rel_err,
        report.entries
    );
}
