//! The tape: node storage, op records, and construction primitives.

use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
///
/// `Var`s are cheap copyable indices; they are only meaningful with the tape
/// that created them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Operation record for one tape node.
///
/// Each variant stores the *input* node ids plus whatever constant payload
/// the backward pass needs. Heavyweight constants (sparse matrices, index
/// lists, pair samples) are reference-counted so cloning a tape op is cheap.
#[derive(Clone)]
pub(crate) enum Op {
    /// Input: parameter (receives gradient) or constant (does not).
    Leaf,
    /// `A · B`.
    MatMul(usize, usize),
    /// `S · B` with a constant sparse left factor.
    SpMM(Arc<Csr>, usize),
    /// `A + B`.
    Add(usize, usize),
    /// `A - B`.
    Sub(usize, usize),
    /// `A ⊙ B`.
    Hadamard(usize, usize),
    /// `c · A`.
    ScaleConst(usize, f32),
    /// `A + c` (element-wise; the constant is not needed by the
    /// backward rule, so only recorded for debugging).
    AddConst(usize, #[allow(dead_code)] f32),
    /// `max(A, 0)`.
    Relu(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// `Aᵀ`.
    Transpose(usize),
    /// `[A; B]` (rows of A on top).
    VStack(usize, usize),
    /// `[A, B]` (columns of A on the left).
    HStack(usize, usize),
    /// Rows `lo..hi` of `A`.
    SliceRows(usize, usize, usize),
    /// Row gather by index list (duplicates allowed).
    SelectRows(usize, Arc<Vec<usize>>),
    /// `A + 1·bias`: adds a `1 x d` bias row to every row of `A`.
    AddRowBroadcast(usize, usize),
    /// `Y_ij = X_ij / Σ_k X_ik` (zero rows preserved).
    DivRowSum(usize),
    /// Differentiable `D̃^{-1/2}(A + I)D̃^{-1/2}` on a dense square input.
    SymNormalize(usize),
    /// For `X : n x d`, builds the `n² x 2d` matrix whose row `i·n + j` is
    /// `[x_i, x_j]` — the MLP_Φ input of Eq. (6).
    PairConcat(usize),
    /// For `Z : n² x 1`, builds the `n x n` matrix `(Z_{i·n+j} + Z_{j·n+i})/2`
    /// — the symmetrisation of Eq. (6).
    PairMeanSym(usize),
    /// Scalar softmax cross-entropy of logits vs integer labels (mean over
    /// rows).
    SoftmaxCrossEntropy(usize, Arc<Vec<usize>>),
    /// `(softmax(X) - onehot(labels)) / N` — the *gradient error* matrix `E`
    /// such that the analytic SGC weight gradient is `ZᵀE` (Eq. 4 inner
    /// term).
    SoftmaxError(usize, Arc<Vec<usize>>),
    /// Scalar L2,1 norm: `Σ_i ‖X_i‖₂` (Eq. 10 / Eq. 12).
    L21(usize),
    /// Scalar Frobenius norm `‖X‖_F` — the L2 gradient-distance ablation.
    Frobenius(usize),
    /// Scalar `Σ_j (1 - cos(A_:j, B_:j))` over columns (Eq. 5).
    CosineColDist(usize, usize),
    /// Scalar binary cross-entropy over sampled node pairs `(i, j, target)`
    /// with logits `H_i · H_j` (Eq. 8 with negative samples).
    PairBce(usize, Arc<Vec<(u32, u32, f32)>>),
    /// Scalar mean of all entries.
    MeanAll(usize),
}

pub(crate) struct Node {
    pub value: DMat,
    pub op: Op,
    /// Whether any gradient can flow into this node (a parameter, or an op
    /// with at least one grad-requiring input).
    pub requires_grad: bool,
    /// Op-specific forward by-product reused by backward (e.g. softmax).
    pub cache: Option<DMat>,
}

/// A define-by-run computation tape.
///
/// Record operations through the builder methods, then call
/// [`Tape::backward`] on a scalar node. Training loops typically construct a
/// fresh tape per step (or [`Tape::clear`] and reuse the allocation).
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Drops all nodes, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a trainable leaf; its gradient is produced by
    /// [`Tape::backward`].
    pub fn param(&mut self, value: DMat) -> Var {
        self.push(value, Op::Leaf, true, None)
    }

    /// Records a constant leaf; no gradient is accumulated for it.
    pub fn constant(&mut self, value: DMat) -> Var {
        self.push(value, Op::Leaf, false, None)
    }

    /// The forward value of `v`.
    #[must_use]
    pub fn value(&self, v: Var) -> &DMat {
        &self.nodes[v.0].value
    }

    /// The forward value of a scalar (1×1) node.
    ///
    /// # Panics
    /// Panics when `v` is not 1×1.
    #[must_use]
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar: node is {}x{}", m.rows(), m.cols());
        m.get(0, 0)
    }

    pub(crate) fn push(
        &mut self,
        value: DMat,
        op: Op,
        requires_grad: bool,
        cache: Option<DMat>,
    ) -> Var {
        self.nodes.push(Node { value, op, requires_grad, cache });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn rg(&self, id: usize) -> bool {
        self.nodes[id].requires_grad
    }
}
