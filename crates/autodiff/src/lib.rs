//! Reverse-mode automatic differentiation over [`mcond_linalg::DMat`].
//!
//! The Rust GNN-autodiff ecosystem is thin, so this crate implements the
//! differentiation engine the MCond reproduction needs: a define-by-run
//! [`Tape`] whose nodes hold forward values, and a single reverse sweep that
//! accumulates gradients for every recorded operation.
//!
//! The op set is exactly what the paper's objectives require:
//!
//! * dense/sparse products and element-wise algebra (GNN layers, Eq. 1),
//! * a **differentiable symmetric GCN normalisation** (training through the
//!   learned synthetic adjacency `A'`),
//! * the **pairwise-MLP adjacency generator** plumbing (Eq. 6:
//!   [`Tape::pair_concat`], [`Tape::pair_mean_sym`]),
//! * row-sum normalisation for the mapping matrix (Eq. 15),
//! * loss heads: softmax cross-entropy, the *softmax error* term used by
//!   gradient matching (Eq. 4), column-wise cosine distance (Eq. 5),
//!   link-reconstruction BCE over sampled pairs (Eq. 8), and the L2,1 norm
//!   (Eq. 10/12).
//!
//! # Example
//! ```
//! use mcond_autodiff::Tape;
//! use mcond_linalg::DMat;
//! let mut tape = Tape::new();
//! let x = tape.param(DMat::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.param(DMat::from_rows(&[&[3.0], &[4.0]]));
//! let y = tape.matmul(x, w);
//! let loss = tape.l21(y); // ||xW||_{2,1} = |1*3 + 2*4| = 11
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).unwrap().as_slice(), &[1.0, 2.0]);
//! ```

mod adam;
mod backward;
pub mod check;
mod ops_basic;
mod ops_graph;
mod ops_loss;
mod tape;

pub use adam::Adam;
pub use backward::Gradients;
pub use tape::{Tape, Var};
