//! Loss heads: each produces a scalar (1×1) node, or in the case of
//! [`Tape::softmax_error`], the analytic gradient-error matrix used by
//! gradient matching.

use crate::tape::{Op, Tape, Var};
use mcond_linalg::DMat;
use std::sync::Arc;

impl Tape {
    /// Mean softmax cross-entropy of `logits` against integer `labels`.
    ///
    /// # Panics
    /// Panics when `labels.len() != logits.rows()`.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: Arc<Vec<usize>>) -> Var {
        let x = self.value(logits);
        assert_eq!(labels.len(), x.rows(), "softmax_cross_entropy: label count");
        let probs = x.softmax_rows();
        let n = x.rows().max(1) as f32;
        let mut loss = 0.0f32;
        for (i, &y) in labels.iter().enumerate() {
            loss -= probs.get(i, y).max(1e-12).ln();
        }
        loss /= n;
        let rg = self.rg(logits.0);
        self.push(
            DMat::from_vec(1, 1, vec![loss]),
            Op::SoftmaxCrossEntropy(logits.0, labels),
            rg,
            Some(probs),
        )
    }

    /// The *softmax error* matrix `E = (softmax(logits) - onehot(labels))/N`.
    ///
    /// For a linear (SGC) relay model with propagated features `Z`, the
    /// cross-entropy weight gradient is exactly `Zᵀ E`, so building `E` as a
    /// tape op lets gradient matching differentiate through the relay
    /// gradient analytically (the `create_graph=True` trick, exact for SGC).
    pub fn softmax_error(&mut self, logits: Var, labels: Arc<Vec<usize>>) -> Var {
        let x = self.value(logits);
        assert_eq!(labels.len(), x.rows(), "softmax_error: label count");
        let probs = x.softmax_rows();
        let n = x.rows().max(1) as f32;
        let mut value = probs.clone();
        for (i, &y) in labels.iter().enumerate() {
            let v = value.get(i, y) - 1.0;
            value.set(i, y, v);
        }
        value.scale_assign(1.0 / n);
        let rg = self.rg(logits.0);
        self.push(value, Op::SoftmaxError(logits.0, labels), rg, Some(probs))
    }

    /// Scalar L2,1 norm `Σ_i ‖X_i‖₂` (rows' L2 norms summed) — Eq. (10) /
    /// Eq. (12) without their `1/N` factors (compose with [`Tape::scale`]).
    pub fn l21(&mut self, a: Var) -> Var {
        let value = DMat::from_vec(1, 1, vec![self.value(a).l21_norm()]);
        let rg = self.rg(a.0);
        self.push(value, Op::L21(a.0), rg, None)
    }

    /// Scalar Frobenius norm `‖X‖_F = sqrt(Σ v²)` — used by the plain-L2
    /// gradient-distance ablation of the gradient-matching objective.
    pub fn frobenius(&mut self, a: Var) -> Var {
        let value = DMat::from_vec(1, 1, vec![self.value(a).frobenius_norm()]);
        let rg = self.rg(a.0);
        self.push(value, Op::Frobenius(a.0), rg, None)
    }

    /// Column-wise cosine distance `Σ_j (1 - cos(A_:j, B_:j))` — the per-layer
    /// gradient distance of Eq. (5). Zero-norm columns contribute `1`
    /// (maximum distance) and receive zero gradient.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn cosine_col_dist(&mut self, a: Var, b: Var) -> Var {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.shape(), y.shape(), "cosine_col_dist: shape mismatch");
        let mut total = 0.0f32;
        for j in 0..x.cols() {
            let mut dot = 0.0f32;
            let mut na = 0.0f32;
            let mut nb = 0.0f32;
            for i in 0..x.rows() {
                let (av, bv) = (x.get(i, j), y.get(i, j));
                dot += av * bv;
                na += av * av;
                nb += bv * bv;
            }
            let denom = na.sqrt() * nb.sqrt();
            total += if denom > 1e-12 { 1.0 - dot / denom } else { 1.0 };
        }
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(
            DMat::from_vec(1, 1, vec![total]),
            Op::CosineColDist(a.0, b.0),
            rg,
            None,
        )
    }

    /// Binary cross-entropy over sampled node pairs — the structure loss of
    /// Eq. (8) extended with negative samples: for each `(i, j, target)`,
    /// the logit is `H_i · H_j` and the loss term is
    /// `-[t·log σ(d) + (1-t)·log(1-σ(d))]`, averaged over the batch.
    ///
    /// The paper's Eq. (8) writes only the positive term but states the batch
    /// "consists of both positive and negative edge samples"; with `A_ij = 0`
    /// the written term vanishes for negatives, so the standard BCE reading
    /// (used by link-prediction objectives the equation is modelled on) is
    /// implemented here.
    ///
    /// # Panics
    /// Panics on an empty batch or out-of-range indices.
    pub fn pair_bce(&mut self, h: Var, pairs: Arc<Vec<(u32, u32, f32)>>) -> Var {
        assert!(!pairs.is_empty(), "pair_bce: empty batch");
        let x = self.value(h);
        let n = x.rows();
        let mut loss = 0.0f32;
        for &(i, j, t) in pairs.iter() {
            let (i, j) = (i as usize, j as usize);
            assert!(i < n && j < n, "pair_bce: pair ({i}, {j}) out of range");
            let d: f32 = x.row(i).iter().zip(x.row(j)).map(|(a, b)| a * b).sum();
            // Numerically stable BCE-with-logits:
            // -[t·logσ(d) + (1-t)·log(1-σ(d))] = max(d,0) - t·d + ln(1+e^{-|d|})
            loss += d.max(0.0) - t * d + (-d.abs()).exp().ln_1p();
        }
        loss /= pairs.len() as f32;
        let rg = self.rg(h.0);
        self.push(DMat::from_vec(1, 1, vec![loss]), Op::PairBce(h.0, pairs), rg, None)
    }
}
