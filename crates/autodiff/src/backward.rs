//! The reverse sweep.
//!
//! Gradient kernels inherit the forward kernels' determinism contracts:
//! every adjoint is computed with the same `matmul`/`spmm` family the
//! forward pass uses, so gradients are bitwise invariant across
//! `MCOND_THREADS` at a fixed `MCOND_SIMD` level. Across SIMD levels the
//! *sparse* adjoints (`spmm_t`) are bitwise identical too, while the dense
//! matmul adjoints may differ in the last ulps when the FMA tiers regroup
//! additions — training runs that must be replayed exactly pin the level.

use crate::tape::{Op, Tape, Var};
use mcond_linalg::{sigmoid_scalar, DMat};

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<DMat>>,
}

impl Gradients {
    /// The gradient accumulated for `v`, if any flowed into it.
    #[must_use]
    pub fn get(&self, v: Var) -> Option<&DMat> {
        self.grads.get(v.0).and_then(Option::as_ref)
    }

    /// Removes and returns the gradient for `v`.
    pub fn take(&mut self, v: Var) -> Option<DMat> {
        self.grads.get_mut(v.0).and_then(Option::take)
    }
}

impl Tape {
    /// Runs the reverse sweep from scalar node `loss` (seeded with 1.0) and
    /// returns per-node gradients.
    ///
    /// # Panics
    /// Panics when `loss` is not a 1×1 node.
    #[must_use]
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be scalar"
        );
        let mut grads: Vec<Option<DMat>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(DMat::from_vec(1, 1, vec![1.0]));

        for id in (0..=loss.0).rev() {
            if !self.nodes[id].requires_grad {
                continue;
            }
            let Some(g) = grads[id].take() else { continue };
            self.accumulate(id, &g, &mut grads);
            // Leaves keep their gradient; interior nodes release theirs once
            // propagated to save memory.
            if matches!(self.nodes[id].op, Op::Leaf) {
                grads[id] = Some(g);
            }
        }
        Gradients { grads }
    }

    /// Propagates the upstream gradient `g` of node `id` into its inputs.
    #[allow(clippy::too_many_lines)]
    fn accumulate(&self, id: usize, g: &DMat, grads: &mut [Option<DMat>]) {
        let node = &self.nodes[id];
        match &node.op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.matmul_nt(&self.nodes[*b].value));
                }
                if self.rg(*b) {
                    add_grad(grads, *b, self.nodes[*a].value.matmul_tn(g));
                }
            }
            Op::SpMM(s, b) => {
                if self.rg(*b) {
                    add_grad(grads, *b, s.spmm_t(g));
                }
            }
            Op::Add(a, b) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.clone());
                }
                if self.rg(*b) {
                    add_grad(grads, *b, g.clone());
                }
            }
            Op::Sub(a, b) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.clone());
                }
                if self.rg(*b) {
                    add_grad(grads, *b, g.scale(-1.0));
                }
            }
            Op::Hadamard(a, b) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.hadamard(&self.nodes[*b].value));
                }
                if self.rg(*b) {
                    add_grad(grads, *b, g.hadamard(&self.nodes[*a].value));
                }
            }
            Op::ScaleConst(a, c) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.scale(*c));
                }
            }
            Op::AddConst(a, _) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.clone());
                }
            }
            Op::Relu(a) => {
                if self.rg(*a) {
                    let mask = self.nodes[*a].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    add_grad(grads, *a, g.hadamard(&mask));
                }
            }
            Op::Sigmoid(a) => {
                if self.rg(*a) {
                    let y = &node.value;
                    let dy = y.map(|v| v * (1.0 - v));
                    add_grad(grads, *a, g.hadamard(&dy));
                }
            }
            Op::Tanh(a) => {
                if self.rg(*a) {
                    let y = &node.value;
                    let dy = y.map(|v| 1.0 - v * v);
                    add_grad(grads, *a, g.hadamard(&dy));
                }
            }
            Op::Transpose(a) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.transpose());
                }
            }
            Op::VStack(a, b) => {
                let ra = self.nodes[*a].value.rows();
                if self.rg(*a) {
                    add_grad(grads, *a, g.slice_rows(0, ra));
                }
                if self.rg(*b) {
                    add_grad(grads, *b, g.slice_rows(ra, g.rows()));
                }
            }
            Op::HStack(a, b) => {
                let ca = self.nodes[*a].value.cols();
                if self.rg(*a) {
                    let mut ga = DMat::zeros(g.rows(), ca);
                    for i in 0..g.rows() {
                        ga.row_mut(i).copy_from_slice(&g.row(i)[..ca]);
                    }
                    add_grad(grads, *a, ga);
                }
                if self.rg(*b) {
                    let cb = g.cols() - ca;
                    let mut gb = DMat::zeros(g.rows(), cb);
                    for i in 0..g.rows() {
                        gb.row_mut(i).copy_from_slice(&g.row(i)[ca..]);
                    }
                    add_grad(grads, *b, gb);
                }
            }
            Op::SliceRows(a, lo, _hi) => {
                if self.rg(*a) {
                    let src = &self.nodes[*a].value;
                    let mut ga = DMat::zeros(src.rows(), src.cols());
                    for i in 0..g.rows() {
                        ga.row_mut(lo + i).copy_from_slice(g.row(i));
                    }
                    add_grad(grads, *a, ga);
                }
            }
            Op::SelectRows(a, idx) => {
                if self.rg(*a) {
                    let src = &self.nodes[*a].value;
                    let mut ga = DMat::zeros(src.rows(), src.cols());
                    for (pos, &i) in idx.iter().enumerate() {
                        for (dst, s) in ga.row_mut(i).iter_mut().zip(g.row(pos)) {
                            *dst += *s;
                        }
                    }
                    add_grad(grads, *a, ga);
                }
            }
            Op::AddRowBroadcast(a, bias) => {
                if self.rg(*a) {
                    add_grad(grads, *a, g.clone());
                }
                if self.rg(*bias) {
                    add_grad(grads, *bias, DMat::from_vec(1, g.cols(), g.col_sums()));
                }
            }
            Op::DivRowSum(a) => {
                if self.rg(*a) {
                    // y_ij = x_ij / s_i  =>  dx_ij = (g_ij - Σ_k g_ik y_ik) / s_i
                    let sums = node.cache.as_ref().expect("DivRowSum cache");
                    let y = &node.value;
                    let mut ga = DMat::zeros(g.rows(), g.cols());
                    for i in 0..g.rows() {
                        let s = sums.get(i, 0);
                        if s == 0.0 {
                            continue;
                        }
                        let inner: f32 =
                            g.row(i).iter().zip(y.row(i)).map(|(gv, yv)| gv * yv).sum();
                        for (dst, gv) in ga.row_mut(i).iter_mut().zip(g.row(i)) {
                            *dst = (gv - inner) / s;
                        }
                    }
                    add_grad(grads, *a, ga);
                }
            }
            Op::SymNormalize(a) => {
                if self.rg(*a) {
                    add_grad(grads, *a, self.sym_normalize_backward(id, *a, g));
                }
            }
            Op::PairConcat(a) => {
                if self.rg(*a) {
                    let x = &self.nodes[*a].value;
                    let (n, d) = x.shape();
                    let mut ga = DMat::zeros(n, d);
                    for i in 0..n {
                        for j in 0..n {
                            let grow = g.row(i * n + j);
                            for (dst, s) in ga.row_mut(i).iter_mut().zip(&grow[..d]) {
                                *dst += *s;
                            }
                            for (dst, s) in ga.row_mut(j).iter_mut().zip(&grow[d..]) {
                                *dst += *s;
                            }
                        }
                    }
                    add_grad(grads, *a, ga);
                }
            }
            Op::PairMeanSym(z) => {
                if self.rg(*z) {
                    let n = node.value.rows();
                    let mut gz = DMat::zeros(n * n, 1);
                    for i in 0..n {
                        for j in 0..n {
                            // y_ij = (z_{i·n+j} + z_{j·n+i}) / 2, so z_{i·n+j}
                            // receives half of g_ij (as first operand) plus
                            // half of g_ji (as second operand).
                            gz.set(i * n + j, 0, 0.5 * (g.get(i, j) + g.get(j, i)));
                        }
                    }
                    add_grad(grads, *z, gz);
                }
            }
            Op::SoftmaxCrossEntropy(a, labels) => {
                if self.rg(*a) {
                    let probs = node.cache.as_ref().expect("SoftmaxCrossEntropy cache");
                    let seed = g.get(0, 0);
                    let n = probs.rows().max(1) as f32;
                    let mut ga = probs.clone();
                    for (i, &y) in labels.iter().enumerate() {
                        let v = ga.get(i, y) - 1.0;
                        ga.set(i, y, v);
                    }
                    ga.scale_assign(seed / n);
                    add_grad(grads, *a, ga);
                }
            }
            Op::SoftmaxError(a, _labels) => {
                if self.rg(*a) {
                    // y_ij = (s_ij - onehot_ij)/N where s = softmax(x).
                    // dx_ij = (1/N) s_ij (g_ij - Σ_k g_ik s_ik)
                    let probs = node.cache.as_ref().expect("SoftmaxError cache");
                    let n = probs.rows().max(1) as f32;
                    let mut ga = DMat::zeros(g.rows(), g.cols());
                    for i in 0..g.rows() {
                        let inner: f32 =
                            g.row(i).iter().zip(probs.row(i)).map(|(gv, sv)| gv * sv).sum();
                        for ((dst, gv), sv) in
                            ga.row_mut(i).iter_mut().zip(g.row(i)).zip(probs.row(i))
                        {
                            *dst = sv * (gv - inner) / n;
                        }
                    }
                    add_grad(grads, *a, ga);
                }
            }
            Op::L21(a) => {
                if self.rg(*a) {
                    let x = &self.nodes[*a].value;
                    let seed = g.get(0, 0);
                    let mut ga = DMat::zeros(x.rows(), x.cols());
                    for i in 0..x.rows() {
                        let norm: f32 =
                            x.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
                        if norm > 1e-12 {
                            for (dst, v) in ga.row_mut(i).iter_mut().zip(x.row(i)) {
                                *dst = seed * v / norm;
                            }
                        }
                    }
                    add_grad(grads, *a, ga);
                }
            }
            Op::Frobenius(a) => {
                if self.rg(*a) {
                    // d‖X‖_F/dX = X / ‖X‖_F (zero at the origin).
                    let x = &self.nodes[*a].value;
                    let norm = node.value.get(0, 0);
                    if norm > 1e-12 {
                        add_grad(grads, *a, x.scale(g.get(0, 0) / norm));
                    }
                }
            }
            Op::CosineColDist(a, b) => {
                let seed = g.get(0, 0);
                let (x, y) = (&self.nodes[*a].value, &self.nodes[*b].value);
                let (rows, cols) = x.shape();
                let mut ga = DMat::zeros(rows, cols);
                let mut gb = DMat::zeros(rows, cols);
                for j in 0..cols {
                    let mut dot = 0.0f32;
                    let mut na2 = 0.0f32;
                    let mut nb2 = 0.0f32;
                    for i in 0..rows {
                        let (av, bv) = (x.get(i, j), y.get(i, j));
                        dot += av * bv;
                        na2 += av * av;
                        nb2 += bv * bv;
                    }
                    let (na, nb) = (na2.sqrt(), nb2.sqrt());
                    if na * nb <= 1e-12 {
                        continue; // zero-norm column: constant loss 1, no grad
                    }
                    let cos = dot / (na * nb);
                    for i in 0..rows {
                        let (av, bv) = (x.get(i, j), y.get(i, j));
                        // d(1-cos)/da_i = -(b_i/(na·nb) - cos·a_i/na²)
                        ga.set(i, j, -seed * (bv / (na * nb) - cos * av / na2));
                        gb.set(i, j, -seed * (av / (na * nb) - cos * bv / nb2));
                    }
                }
                if self.rg(*a) {
                    add_grad(grads, *a, ga);
                }
                if self.rg(*b) {
                    add_grad(grads, *b, gb);
                }
            }
            Op::PairBce(h, pairs) => {
                if self.rg(*h) {
                    let x = &self.nodes[*h].value;
                    let seed = g.get(0, 0) / pairs.len() as f32;
                    let mut gh = DMat::zeros(x.rows(), x.cols());
                    for &(i, j, t) in pairs.iter() {
                        let (i, j) = (i as usize, j as usize);
                        let d: f32 =
                            x.row(i).iter().zip(x.row(j)).map(|(a, b)| a * b).sum();
                        let coeff = seed * (sigmoid_scalar(d) - t);
                        for (dst, v) in gh.row_mut(i).iter_mut().zip(x.row(j)) {
                            *dst += coeff * v;
                        }
                        for (dst, v) in gh.row_mut(j).iter_mut().zip(x.row(i)) {
                            *dst += coeff * v;
                        }
                    }
                    add_grad(grads, *h, gh);
                }
            }
            Op::MeanAll(a) => {
                if self.rg(*a) {
                    let x = &self.nodes[*a].value;
                    let seed = g.get(0, 0) / x.len().max(1) as f32;
                    add_grad(grads, *a, DMat::filled(x.rows(), x.cols(), seed));
                }
            }
        }
    }

    /// Backward rule for `Y = D̃^{-1/2}(X + I)D̃^{-1/2}`.
    ///
    /// With `T = X + I`, `d = rowsum(T)`, `r_i = d_i^{-1/2}`,
    /// `y_ij = t_ij r_i r_j`. Perturbing `t_kl` changes only `d_k` (hence
    /// only `r_k`), and `r_k` scales both row `k` and column `k` of `Y`, so
    /// both correction terms key on the *row* index `k`:
    /// `∂L/∂t_kl = g_kl r_k r_l - (r_k³/2)·(u_k + w_k)`,
    /// where `u_k = Σ_j g_kj t_kj r_j` (row `k` of `G⊙T` against `r`) and
    /// `w_k = Σ_i g_ik t_ik r_i` (column `k`). `∂L/∂x = ∂L/∂t` since the
    /// self-loop shift is constant.
    fn sym_normalize_backward(&self, id: usize, a: usize, g: &DMat) -> DMat {
        let node = &self.nodes[id];
        let r = node.cache.as_ref().expect("SymNormalize cache");
        let x = &self.nodes[a].value;
        let n = x.rows();
        // Recover T = X + I.
        let mut t = x.clone();
        for i in 0..n {
            let v = t.get(i, i) + 1.0;
            t.set(i, i, v);
        }
        let mut u = vec![0.0f32; n];
        let mut w = vec![0.0f32; n];
        for (i, u_i) in u.iter_mut().enumerate() {
            let ri = r.get(i, 0);
            for (j, w_j) in w.iter_mut().enumerate() {
                let gt = g.get(i, j) * t.get(i, j);
                *u_i += gt * r.get(j, 0);
                *w_j += gt * ri;
            }
        }
        let mut out = DMat::zeros(n, n);
        for k in 0..n {
            let rk = r.get(k, 0);
            let corr = 0.5 * rk * rk * rk * (u[k] + w[k]);
            for l in 0..n {
                let rl = r.get(l, 0);
                out.set(k, l, g.get(k, l) * rk * rl - corr);
            }
        }
        out
    }
}

fn add_grad(grads: &mut [Option<DMat>], id: usize, g: DMat) {
    match &mut grads[id] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}
