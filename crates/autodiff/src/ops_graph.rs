//! Graph-specific differentiable ops: sparse products, the differentiable
//! GCN normalisation, and the pairwise plumbing of the Eq. (6) adjacency
//! generator.

use crate::tape::{Op, Tape, Var};
use mcond_linalg::DMat;
use mcond_sparse::Csr;
use std::sync::Arc;

impl Tape {
    /// `S · b` where `S` is a constant sparse matrix — the message-passing
    /// primitive. Gradient flows into `b` only.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&mut self, s: Arc<Csr>, b: Var) -> Var {
        let value = s.spmm(self.value(b));
        let rg = self.rg(b.0);
        self.push(value, Op::SpMM(s, b.0), rg, None)
    }

    /// Differentiable symmetric GCN normalisation of a dense square input:
    /// `Y = D̃^{-1/2}(A + I)D̃^{-1/2}` with `D̃ = diag(rowsum(A + I))`.
    ///
    /// Used to train through the learned synthetic adjacency `A'` and, in
    /// the inductive loss, through blocks containing `aM`.
    ///
    /// # Panics
    /// Panics when the input is not square.
    pub fn sym_normalize(&mut self, a: Var) -> Var {
        let x = self.value(a);
        assert_eq!(x.rows(), x.cols(), "sym_normalize: input must be square");
        let n = x.rows();
        let mut tilde = x.clone();
        for i in 0..n {
            let v = tilde.get(i, i) + 1.0;
            tilde.set(i, i, v);
        }
        let deg = tilde.row_sums();
        let r: Vec<f32> =
            deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
        let mut value = tilde;
        for i in 0..n {
            let ri = r[i];
            for (j, v) in value.row_mut(i).iter_mut().enumerate() {
                *v *= ri * r[j];
            }
        }
        // Cache r (as an n x 1 matrix) for the backward pass.
        let cache = DMat::from_vec(n, 1, r);
        let rg = self.rg(a.0);
        self.push(value, Op::SymNormalize(a.0), rg, Some(cache))
    }

    /// Builds the `n² x 2d` pair-concat matrix whose row `i·n + j` is
    /// `[x_i, x_j]` — input of MLP_Φ in Eq. (6).
    ///
    /// Quadratic in `n`; intended for the small synthetic node set
    /// (`n = N' ≪ N`).
    pub fn pair_concat(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let (n, d) = x.shape();
        let mut value = DMat::zeros(n * n, 2 * d);
        for i in 0..n {
            for j in 0..n {
                let row = value.row_mut(i * n + j);
                row[..d].copy_from_slice(x.row(i));
                row[d..].copy_from_slice(x.row(j));
            }
        }
        let rg = self.rg(a.0);
        self.push(value, Op::PairConcat(a.0), rg, None)
    }

    /// Reshapes an `n² x 1` pair score vector into the symmetric `n x n`
    /// matrix `(Z_{i·n+j} + Z_{j·n+i}) / 2` — the symmetrisation of Eq. (6)
    /// (apply [`Tape::sigmoid`] on the result to finish the equation).
    ///
    /// # Panics
    /// Panics when the input is not a perfect-square-length column vector.
    pub fn pair_mean_sym(&mut self, z: Var) -> Var {
        let v = self.value(z);
        assert_eq!(v.cols(), 1, "pair_mean_sym: expected a column vector");
        let n2 = v.rows();
        let n = (n2 as f64).sqrt().round() as usize;
        assert_eq!(n * n, n2, "pair_mean_sym: length {n2} is not a perfect square");
        let mut value = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let s = 0.5 * (v.get(i * n + j, 0) + v.get(j * n + i, 0));
                value.set(i, j, s);
            }
        }
        let rg = self.rg(z.0);
        self.push(value, Op::PairMeanSym(z.0), rg, None)
    }

    /// Zeroes the diagonal of a square matrix (no learned self-loops in `A'`
    /// — the self-loop is added back by the normalisation).
    ///
    /// Implemented as a Hadamard with a constant mask so no new op kind is
    /// needed.
    pub fn zero_diagonal(&mut self, a: Var) -> Var {
        let n = self.value(a).rows();
        let mut mask = DMat::filled(n, n, 1.0);
        for i in 0..n {
            mask.set(i, i, 0.0);
        }
        let m = self.constant(mask);
        self.hadamard(a, m)
    }
}
