//! Behavioural tests of the tape API itself: bookkeeping, gradient
//! accumulation, constant handling, and reuse.

use mcond_autodiff::Tape;
use mcond_linalg::{approx_eq, DMat};
use std::sync::Arc;

#[test]
fn tape_length_tracks_recorded_nodes() {
    let mut tape = Tape::new();
    assert!(tape.is_empty());
    let a = tape.param(DMat::eye(2));
    let b = tape.constant(DMat::eye(2));
    let _ = tape.add(a, b);
    assert_eq!(tape.len(), 3);
    tape.clear();
    assert!(tape.is_empty());
}

#[test]
fn value_returns_forward_result() {
    let mut tape = Tape::new();
    let a = tape.param(DMat::from_rows(&[&[1.0, 2.0]]));
    let b = tape.constant(DMat::from_rows(&[&[3.0, 4.0]]));
    let c = tape.hadamard(a, b);
    assert_eq!(tape.value(c), &DMat::from_rows(&[&[3.0, 8.0]]));
}

#[test]
fn scalar_reads_one_by_one_nodes() {
    let mut tape = Tape::new();
    let a = tape.param(DMat::from_rows(&[&[2.0, 2.0]]));
    let l = tape.l21(a);
    assert!(approx_eq(tape.scalar(l), 8.0f32.sqrt(), 1e-5));
}

#[test]
#[should_panic(expected = "scalar")]
fn scalar_rejects_matrices() {
    let mut tape = Tape::new();
    let a = tape.param(DMat::eye(2));
    let _ = tape.scalar(a);
}

#[test]
#[should_panic(expected = "loss must be scalar")]
fn backward_rejects_matrix_loss() {
    let mut tape = Tape::new();
    let a = tape.param(DMat::eye(2));
    let _ = tape.backward(a);
}

#[test]
fn gradients_accumulate_when_a_var_is_reused() {
    // loss = l21(x + x) => grad = 2 * d l21(2x)/d(2x) applied twice.
    let x0 = DMat::from_rows(&[&[3.0, 4.0]]);
    let mut tape = Tape::new();
    let x = tape.param(x0.clone());
    let y = tape.add(x, x);
    let l = tape.l21(y);
    let grads = tape.backward(l);
    let g = grads.get(x).unwrap();
    // d‖2x‖/dx = 2·x/‖x‖: for (3,4): (1.2, 1.6).
    assert!(approx_eq(g.get(0, 0), 1.2, 1e-4));
    assert!(approx_eq(g.get(0, 1), 1.6, 1e-4));
}

#[test]
fn constants_receive_no_gradient() {
    let mut tape = Tape::new();
    let a = tape.param(DMat::eye(2));
    let b = tape.constant(DMat::eye(2));
    let y = tape.matmul(a, b);
    let l = tape.l21(y);
    let grads = tape.backward(l);
    assert!(grads.get(a).is_some());
    assert!(grads.get(b).is_none());
}

#[test]
fn take_removes_gradient() {
    let mut tape = Tape::new();
    let a = tape.param(DMat::eye(3));
    let l = tape.l21(a);
    let mut grads = tape.backward(l);
    assert!(grads.take(a).is_some());
    assert!(grads.take(a).is_none());
    assert!(grads.get(a).is_none());
}

#[test]
fn branches_after_the_loss_do_not_contribute() {
    // Nodes recorded after the loss node must not affect its gradient.
    let mut tape = Tape::new();
    let x = tape.param(DMat::from_rows(&[&[1.0, 1.0]]));
    let l = tape.l21(x);
    let _unrelated = tape.scale(x, 100.0);
    let grads = tape.backward(l);
    let g = grads.get(x).unwrap();
    let norm = 2.0f32.sqrt();
    assert!(approx_eq(g.get(0, 0), 1.0 / norm, 1e-4));
}

#[test]
fn diamond_graph_accumulates_both_paths() {
    // y = relu(x) + sigmoid(x): both branches feed the loss.
    let mut tape = Tape::new();
    let x = tape.param(DMat::from_rows(&[&[0.5]]));
    let r = tape.relu(x);
    let s = tape.sigmoid(x);
    let y = tape.add(r, s);
    let l = tape.l21(y);
    let grads = tape.backward(l);
    // dl/dy = 1 (positive scalar row), dy/dx = 1 + σ'(0.5).
    let sig = 1.0 / (1.0 + (-0.5f32).exp());
    let expected = 1.0 + sig * (1.0 - sig);
    assert!(approx_eq(grads.get(x).unwrap().get(0, 0), expected, 1e-4));
}

#[test]
fn cleared_tape_can_be_reused() {
    let mut tape = Tape::new();
    for step in 0..3 {
        tape.clear();
        let x = tape.param(DMat::filled(2, 2, step as f32 + 1.0));
        let l = tape.l21(x);
        let grads = tape.backward(l);
        assert!(grads.get(x).is_some());
    }
}

#[test]
fn select_rows_with_duplicates_doubles_gradient() {
    let mut tape = Tape::new();
    let x = tape.param(DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
    let sel = tape.select_rows(x, Arc::new(vec![0, 0]));
    let l = tape.l21(sel);
    let grads = tape.backward(l);
    let g = grads.get(x).unwrap();
    // Row 0 selected twice: gradient = 2 · x_0/‖x_0‖ = (2, 0); row 1 was
    // never selected, so its gradient is zero.
    assert!(approx_eq(g.get(0, 0), 2.0, 1e-4));
    assert_eq!(g.get(1, 1), 0.0);
}

#[test]
fn multi_parameter_backward_gives_gradients_to_each() {
    let mut tape = Tape::new();
    let w1 = tape.param(DMat::eye(2));
    let w2 = tape.param(DMat::filled(2, 2, 0.5));
    let x = tape.constant(DMat::from_rows(&[&[1.0, 2.0]]));
    let h = tape.matmul(x, w1);
    let y = tape.matmul(h, w2);
    let l = tape.l21(y);
    let grads = tape.backward(l);
    assert!(grads.get(w1).unwrap().frobenius_norm() > 0.0);
    assert!(grads.get(w2).unwrap().frobenius_norm() > 0.0);
}
