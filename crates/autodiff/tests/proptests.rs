//! Property tests of the autodiff engine: structural identities the tape
//! must satisfy for arbitrary inputs.

use mcond_autodiff::Tape;
use mcond_linalg::{approx_eq, DMat};
use proptest::prelude::*;

fn arb_mat(max_dim: usize) -> impl Strategy<Value = DMat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| DMat::from_vec(r, c, data))
    })
}

proptest! {
    /// Backward of a linear map is input-independent: for l = Σ rows ‖·‖ of
    /// (s·X), scaling the *loss* by c scales the gradient by c.
    #[test]
    fn gradient_scales_linearly_with_loss_scaling(m in arb_mat(8), c in 0.5f32..3.0) {
        let grad_of = |scale: f32| {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let l = tape.l21(x);
            let scaled = tape.scale(l, scale);
            let grads = tape.backward(scaled);
            grads.get(x).cloned().unwrap_or_else(|| DMat::zeros(m.rows(), m.cols()))
        };
        let g1 = grad_of(1.0);
        let gc = grad_of(c);
        for (a, b) in g1.as_slice().iter().zip(gc.as_slice()) {
            prop_assert!(approx_eq(*a * c, *b, 1e-3), "{} vs {}", a * c, b);
        }
    }

    /// Sum rule: grad(l1 + l2) == grad(l1) + grad(l2).
    #[test]
    fn gradient_of_sum_is_sum_of_gradients(m in arb_mat(6)) {
        let both = {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let l1 = tape.l21(x);
            let s = tape.sigmoid(x);
            let l2 = tape.l21(s);
            let l = tape.add(l1, l2);
            let grads = tape.backward(l);
            grads.get(x).cloned().unwrap()
        };
        let separate = {
            let g = |which: usize| {
                let mut tape = Tape::new();
                let x = tape.param(m.clone());
                let l = if which == 0 {
                    tape.l21(x)
                } else {
                    let s = tape.sigmoid(x);
                    tape.l21(s)
                };
                let grads = tape.backward(l);
                grads.get(x).cloned().unwrap_or_else(|| DMat::zeros(m.rows(), m.cols()))
            };
            g(0).add(&g(1))
        };
        for (a, b) in both.as_slice().iter().zip(separate.as_slice()) {
            prop_assert!(approx_eq(*a, *b, 1e-3), "{} vs {}", a, b);
        }
    }

    /// Transpose symmetry: grad through a transpose equals transposed grad.
    #[test]
    fn transpose_pushes_gradient_through(m in arb_mat(7)) {
        let direct = {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let l = tape.l21(x);
            tape.backward(l).get(x).cloned().unwrap()
        };
        let via_double_transpose = {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let t = tape.transpose(x);
            let tt = tape.transpose(t);
            let l = tape.l21(tt);
            tape.backward(l).get(x).cloned().unwrap()
        };
        for (a, b) in direct.as_slice().iter().zip(via_double_transpose.as_slice()) {
            prop_assert!(approx_eq(*a, *b, 1e-4));
        }
    }

    /// The forward value of composed ops matches eager dense evaluation.
    #[test]
    fn forward_values_match_eager_algebra(m in arb_mat(6)) {
        let mut tape = Tape::new();
        let x = tape.param(m.clone());
        let r = tape.relu(x);
        let s = tape.scale(r, 2.0);
        let a = tape.add_const(s, -0.5);
        let eager = m.relu().scale(2.0).map(|v| v - 0.5);
        prop_assert_eq!(tape.value(a), &eager);
    }

    /// vstack/slice_rows round trip preserves gradients exactly.
    #[test]
    fn vstack_slice_round_trip(m in arb_mat(5)) {
        let mut tape = Tape::new();
        let x = tape.param(m.clone());
        let doubled = tape.vstack(x, x);
        let back = tape.slice_rows(doubled, 0, m.rows());
        let l = tape.l21(back);
        let g_roundtrip = tape.backward(l).get(x).cloned().unwrap();

        let mut tape2 = Tape::new();
        let x2 = tape2.param(m.clone());
        let l2 = tape2.l21(x2);
        let g_direct = tape2.backward(l2).get(x2).cloned().unwrap();
        for (a, b) in g_roundtrip.as_slice().iter().zip(g_direct.as_slice()) {
            prop_assert!(approx_eq(*a, *b, 1e-4));
        }
    }

    /// Softmax cross-entropy is non-negative and ln(C) at uniform logits.
    #[test]
    fn cross_entropy_bounds(rows in 1usize..6, cols in 2usize..5) {
        let mut tape = Tape::new();
        let logits = tape.param(DMat::zeros(rows, cols));
        let labels = std::rc::Rc::new((0..rows).map(|i| i % cols).collect::<Vec<_>>());
        let l = tape.softmax_cross_entropy(logits, labels);
        let v = tape.scalar(l);
        prop_assert!(v >= 0.0);
        prop_assert!(approx_eq(v, (cols as f32).ln(), 1e-4));
    }
}
