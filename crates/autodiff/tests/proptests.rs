//! Property-style tests of the autodiff engine: structural identities the
//! tape must satisfy for arbitrary inputs. Cases are drawn from the
//! workspace's seeded [`MatRng`] (no external fuzzing crate); assertion
//! messages carry the case index for deterministic replay.

use mcond_autodiff::Tape;
use mcond_linalg::{approx_eq, DMat, MatRng};

const CASES: u64 = 48;

fn case_rng(salt: u64, case: u64) -> MatRng {
    MatRng::seed_from(0xAD1F ^ (salt << 32) ^ case)
}

fn arb_mat(rng: &mut MatRng, max_dim: usize) -> DMat {
    let r = 1 + rng.index(max_dim);
    let c = 1 + rng.index(max_dim);
    rng.uniform(r, c, -3.0, 3.0)
}

/// Backward of a linear map is input-independent: for l = Σ rows ‖·‖ of
/// (s·X), scaling the *loss* by c scales the gradient by c.
#[test]
fn gradient_scales_linearly_with_loss_scaling() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let m = arb_mat(&mut rng, 8);
        let c = 0.5 + 2.5 * rng.unit();
        let grad_of = |scale: f32| {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let l = tape.l21(x);
            let scaled = tape.scale(l, scale);
            let grads = tape.backward(scaled);
            grads.get(x).cloned().unwrap_or_else(|| DMat::zeros(m.rows(), m.cols()))
        };
        let g1 = grad_of(1.0);
        let gc = grad_of(c);
        for (a, b) in g1.as_slice().iter().zip(gc.as_slice()) {
            assert!(approx_eq(*a * c, *b, 1e-3), "case {case}: {} vs {b}", a * c);
        }
    }
}

/// Sum rule: grad(l1 + l2) == grad(l1) + grad(l2).
#[test]
fn gradient_of_sum_is_sum_of_gradients() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(2, case), 6);
        let both = {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let l1 = tape.l21(x);
            let s = tape.sigmoid(x);
            let l2 = tape.l21(s);
            let l = tape.add(l1, l2);
            let grads = tape.backward(l);
            grads.get(x).cloned().unwrap()
        };
        let separate = {
            let g = |which: usize| {
                let mut tape = Tape::new();
                let x = tape.param(m.clone());
                let l = if which == 0 {
                    tape.l21(x)
                } else {
                    let s = tape.sigmoid(x);
                    tape.l21(s)
                };
                let grads = tape.backward(l);
                grads.get(x).cloned().unwrap_or_else(|| DMat::zeros(m.rows(), m.cols()))
            };
            g(0).add(&g(1))
        };
        for (a, b) in both.as_slice().iter().zip(separate.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-3), "case {case}: {a} vs {b}");
        }
    }
}

/// Transpose symmetry: grad through a transpose equals transposed grad.
#[test]
fn transpose_pushes_gradient_through() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(3, case), 7);
        let direct = {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let l = tape.l21(x);
            tape.backward(l).get(x).cloned().unwrap()
        };
        let via_double_transpose = {
            let mut tape = Tape::new();
            let x = tape.param(m.clone());
            let t = tape.transpose(x);
            let tt = tape.transpose(t);
            let l = tape.l21(tt);
            tape.backward(l).get(x).cloned().unwrap()
        };
        for (a, b) in direct.as_slice().iter().zip(via_double_transpose.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-4), "case {case}: {a} vs {b}");
        }
    }
}

/// The forward value of composed ops matches eager dense evaluation.
#[test]
fn forward_values_match_eager_algebra() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(4, case), 6);
        let mut tape = Tape::new();
        let x = tape.param(m.clone());
        let r = tape.relu(x);
        let s = tape.scale(r, 2.0);
        let a = tape.add_const(s, -0.5);
        let eager = m.relu().scale(2.0).map(|v| v - 0.5);
        assert_eq!(tape.value(a), &eager, "case {case}");
    }
}

/// vstack/slice_rows round trip preserves gradients exactly.
#[test]
fn vstack_slice_round_trip() {
    for case in 0..CASES {
        let m = arb_mat(&mut case_rng(5, case), 5);
        let mut tape = Tape::new();
        let x = tape.param(m.clone());
        let doubled = tape.vstack(x, x);
        let back = tape.slice_rows(doubled, 0, m.rows());
        let l = tape.l21(back);
        let g_roundtrip = tape.backward(l).get(x).cloned().unwrap();

        let mut tape2 = Tape::new();
        let x2 = tape2.param(m.clone());
        let l2 = tape2.l21(x2);
        let g_direct = tape2.backward(l2).get(x2).cloned().unwrap();
        for (a, b) in g_roundtrip.as_slice().iter().zip(g_direct.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-4), "case {case}: {a} vs {b}");
        }
    }
}

/// Softmax cross-entropy is non-negative and ln(C) at uniform logits.
#[test]
fn cross_entropy_bounds() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let rows = 1 + rng.index(5);
        let cols = 2 + rng.index(3);
        let mut tape = Tape::new();
        let logits = tape.param(DMat::zeros(rows, cols));
        let labels = std::sync::Arc::new((0..rows).map(|i| i % cols).collect::<Vec<_>>());
        let l = tape.softmax_cross_entropy(logits, labels);
        let v = tape.scalar(l);
        assert!(v >= 0.0, "case {case}");
        assert!(approx_eq(v, (cols as f32).ln(), 1e-4), "case {case}: {v}");
    }
}
