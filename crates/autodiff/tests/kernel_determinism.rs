//! Gradient determinism across thread counts and SIMD levels.
//!
//! The backward sweep runs on the same kernel family as the forward pass,
//! so it inherits the kernels' contracts: bitwise invariance across
//! `MCOND_THREADS` at any fixed `MCOND_SIMD` level, and tolerance-level
//! agreement between the FMA tiers and the scalar reference (the sparse
//! adjoint is bitwise identical at every level; only dense matmul adjoints
//! may regroup additions).

use mcond_autodiff::Tape;
use mcond_linalg::simd::{self, SimdLevel};
use mcond_linalg::{approx_eq, DMat, MatRng};
use mcond_sparse::{Coo, Csr};
use std::sync::Arc;

/// A skewed random graph big enough to clear every parallel threshold.
fn graph(rows: usize, cols: usize, seed: u64) -> Csr {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut coo = Coo::new(rows, cols);
    for i in 0..rows {
        let deg = 2 + (next() as usize % 8) + if i % 29 == 0 { 32 } else { 0 };
        for _ in 0..deg {
            let c = (next() as usize) % cols;
            let v = ((next() % 2000) as f32 - 1000.0) / 500.0;
            coo.push(i, c, v);
        }
    }
    coo.to_csr()
}

/// d(l21 ∘ relu ∘ (S·B)·W)/dB — a composite touching spmm, matmul, and an
/// activation, with shapes large enough that both the forward products and
/// the adjoints fan out to the pool.
fn composite_grad(s: &Arc<Csr>, b0: &DMat, w0: &DMat) -> DMat {
    let mut t = Tape::new();
    let b = t.param(b0.clone());
    let y1 = t.spmm(Arc::clone(s), b);
    let w = t.constant(w0.clone());
    let y2 = t.matmul(y1, w);
    let y3 = t.relu(y2);
    let l = t.l21(y3);
    let mut grads = t.backward(l);
    grads.take(b).expect("gradient must reach the parameter")
}

#[test]
fn composite_gradients_are_thread_invariant_at_every_level() {
    let s = Arc::new(graph(300, 157, 41));
    let b0 = MatRng::seed_from(1).uniform(157, 96, -1.0, 1.0);
    let w0 = MatRng::seed_from(2).uniform(96, 64, -1.0, 1.0);
    let scalar_ref = simd::with_simd_level(SimdLevel::Scalar, || {
        mcond_par::with_thread_limit(1, || composite_grad(&s, &b0, &w0))
    });
    for level in simd::available_levels() {
        let one = simd::with_simd_level(level, || {
            mcond_par::with_thread_limit(1, || composite_grad(&s, &b0, &w0))
        });
        let four = simd::with_simd_level(level, || {
            mcond_par::with_thread_limit(4, || composite_grad(&s, &b0, &w0))
        });
        assert_eq!(
            one.as_slice(),
            four.as_slice(),
            "gradient drifted across thread counts at level {}",
            level.name()
        );
        // Across levels only tolerance equality is promised (dense FMA
        // tiers regroup additions); the values must still agree closely.
        for (g, r) in one.as_slice().iter().zip(scalar_ref.as_slice()) {
            assert!(
                approx_eq(*g, *r, 1e-3),
                "level {} gradient {g} vs scalar {r}",
                level.name()
            );
        }
    }
}
