//! Finite-difference verification of every autodiff op.
//!
//! f32 central differences are noisy, so steps and tolerances are chosen
//! per-op; the point is catching wrong adjoint formulas (which produce
//! order-1 errors), not chasing ulps.

use mcond_autodiff::check::assert_gradients_match;
use mcond_linalg::{DMat, MatRng};
use mcond_sparse::Coo;
use std::sync::Arc;

fn small(rows: usize, cols: usize, seed: u64) -> DMat {
    MatRng::seed_from(seed).uniform(rows, cols, -1.0, 1.0)
}

#[test]
fn matmul_lhs_and_rhs() {
    let b0 = small(3, 2, 1);
    assert_gradients_match(&small(4, 3, 0), 1e-2, 2e-2, |t, p| {
        let a = t.param(p);
        let b = t.constant(b0.clone());
        let y = t.matmul(a, b);
        let l = t.l21(y);
        (a, l)
    });
    let a0 = small(4, 3, 2);
    assert_gradients_match(&small(3, 2, 3), 1e-2, 2e-2, |t, p| {
        let a = t.constant(a0.clone());
        let b = t.param(p);
        let y = t.matmul(a, b);
        let l = t.l21(y);
        (b, l)
    });
}

#[test]
fn spmm_rhs() {
    let mut coo = Coo::new(4, 3);
    coo.push(0, 1, 2.0);
    coo.push(1, 0, -1.0);
    coo.push(3, 2, 0.5);
    coo.push(2, 1, 1.5);
    let s = Arc::new(coo.to_csr());
    assert_gradients_match(&small(3, 2, 4), 1e-2, 2e-2, |t, p| {
        let b = t.param(p);
        let y = t.spmm(Arc::clone(&s), b);
        let l = t.l21(y);
        (b, l)
    });
}

#[test]
fn elementwise_ops() {
    let other = small(3, 3, 5);
    assert_gradients_match(&small(3, 3, 6), 1e-2, 2e-2, |t, p| {
        let a = t.param(p);
        let b = t.constant(other.clone());
        let s1 = t.add(a, b);
        let s2 = t.sub(s1, b);
        let s3 = t.hadamard(s2, b);
        let s4 = t.scale(s3, 1.7);
        let s5 = t.add_const(s4, 0.3);
        let l = t.l21(s5);
        (a, l)
    });
}

#[test]
fn activations() {
    // Shift away from 0 so ReLU's kink doesn't break finite differences.
    let base = small(3, 3, 7).map(|v| v + if v >= 0.0 { 0.3 } else { -0.3 });
    assert_gradients_match(&base, 1e-3, 3e-2, |t, p| {
        let a = t.param(p);
        let r = t.relu(a);
        let s = t.sigmoid(r);
        let h = t.tanh(s);
        let l = t.l21(h);
        (a, l)
    });
}

#[test]
fn structural_ops() {
    let other = small(2, 4, 8);
    assert_gradients_match(&small(3, 4, 9), 1e-2, 2e-2, |t, p| {
        let a = t.param(p);
        let b = t.constant(other.clone());
        let v = t.vstack(a, b); // 5 x 4
        let tr = t.transpose(v); // 4 x 5
        let h = t.hstack(tr, tr); // 4 x 10
        let s = t.slice_rows(h, 1, 4); // 3 x 10
        let sel = t.select_rows(s, Arc::new(vec![0, 2, 2, 1]));
        let l = t.l21(sel);
        (a, l)
    });
}

#[test]
fn add_row_broadcast_bias() {
    let x0 = small(4, 3, 10);
    assert_gradients_match(&small(1, 3, 11), 1e-2, 2e-2, |t, p| {
        let x = t.constant(x0.clone());
        let b = t.param(p);
        let y = t.add_row_broadcast(x, b);
        let l = t.l21(y);
        (b, l)
    });
}

#[test]
fn div_row_sum() {
    // Positive entries so no row sum crosses zero under perturbation.
    let base = MatRng::seed_from(12).uniform(4, 3, 0.5, 2.0);
    assert_gradients_match(&base, 1e-3, 3e-2, |t, p| {
        let a = t.param(p);
        let y = t.div_row_sum(a);
        let l = t.l21(y);
        (a, l)
    });
}

#[test]
fn sym_normalize() {
    let base = MatRng::seed_from(13).uniform(4, 4, 0.1, 1.0);
    assert_gradients_match(&base, 1e-3, 3e-2, |t, p| {
        let a = t.param(p);
        let y = t.sym_normalize(a);
        let l = t.l21(y);
        (a, l)
    });
}

#[test]
fn pair_concat_and_mean_sym() {
    let w0 = small(6, 1, 14);
    assert_gradients_match(&small(4, 3, 15), 1e-2, 3e-2, |t, p| {
        let x = t.param(p);
        let pc = t.pair_concat(x); // 16 x 6
        let w = t.constant(w0.clone());
        let z = t.matmul(pc, w); // 16 x 1
        let sym = t.pair_mean_sym(z); // 4 x 4
        let sig = t.sigmoid(sym);
        let l = t.l21(sig);
        (x, l)
    });
}

#[test]
fn softmax_cross_entropy_grad() {
    let labels = Arc::new(vec![0usize, 2, 1, 2]);
    assert_gradients_match(&small(4, 3, 16), 1e-2, 2e-2, |t, p| {
        let logits = t.param(p);
        let l = t.softmax_cross_entropy(logits, Arc::clone(&labels));
        (logits, l)
    });
}

#[test]
fn softmax_error_second_order_path() {
    // The gradient-matching path: loss = distance(const, ZᵀE(ZW)).
    let labels = Arc::new(vec![1usize, 0, 1]);
    let w0 = small(2, 2, 17);
    let target = small(2, 2, 18);
    assert_gradients_match(&small(3, 2, 19), 1e-2, 4e-2, |t, p| {
        let z = t.param(p);
        let w = t.constant(w0.clone());
        let logits = t.matmul(z, w);
        let e = t.softmax_error(logits, Arc::clone(&labels));
        let zt = t.transpose(z);
        let g = t.matmul(zt, e); // analytic SGC weight gradient
        let tgt = t.constant(target.clone());
        let diff = t.sub(g, tgt);
        let l = t.l21(diff);
        (z, l)
    });
}

#[test]
fn l21_away_from_zero_rows() {
    let base = small(3, 4, 20).map(|v| v + 2.0);
    assert_gradients_match(&base, 1e-3, 2e-2, |t, p| {
        let a = t.param(p);
        let l = t.l21(a);
        (a, l)
    });
}

#[test]
fn frobenius_grad() {
    let base = small(3, 4, 31).map(|v| v + 0.5);
    assert_gradients_match(&base, 1e-3, 2e-2, |t, p| {
        let a = t.param(p);
        let l = t.frobenius(a);
        (a, l)
    });
}

#[test]
fn cosine_col_dist_both_sides() {
    let other = small(4, 3, 21);
    assert_gradients_match(&small(4, 3, 22), 1e-3, 4e-2, |t, p| {
        let a = t.param(p);
        let b = t.constant(other.clone());
        let l = t.cosine_col_dist(a, b);
        (a, l)
    });
    let first = small(4, 3, 23);
    assert_gradients_match(&small(4, 3, 24), 1e-3, 4e-2, |t, p| {
        let a = t.constant(first.clone());
        let b = t.param(p);
        let l = t.cosine_col_dist(a, b);
        (b, l)
    });
}

#[test]
fn pair_bce_grad() {
    let pairs = Arc::new(vec![(0u32, 1u32, 1.0f32), (1, 2, 0.0), (0, 2, 1.0), (2, 2, 0.0)]);
    assert_gradients_match(&small(3, 4, 25), 1e-2, 3e-2, |t, p| {
        let h = t.param(p);
        let l = t.pair_bce(h, Arc::clone(&pairs));
        (h, l)
    });
}

#[test]
fn mean_all_grad() {
    assert_gradients_match(&small(3, 3, 26), 1e-2, 2e-2, |t, p| {
        let a = t.param(p);
        let l = t.mean_all(a);
        (a, l)
    });
}

#[test]
fn zero_diagonal_masks_gradient() {
    assert_gradients_match(&small(4, 4, 27), 1e-2, 2e-2, |t, p| {
        let a = t.param(p);
        let z = t.zero_diagonal(a);
        let l = t.l21(z);
        (a, l)
    });
}

#[test]
fn composite_two_layer_gcn_like_network() {
    // ReLU(Â X W1) W2 with cross-entropy: the full training path.
    let mut coo = Coo::new(5, 5);
    for &(i, j) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)] {
        coo.push_sym(i, j, 1.0);
    }
    let adj = Arc::new(mcond_sparse::sym_normalize(&coo.to_csr()));
    let x0 = small(5, 3, 28);
    let w2 = small(4, 2, 29);
    let labels = Arc::new(vec![0usize, 1, 0, 1, 0]);
    assert_gradients_match(&small(3, 4, 30), 1e-2, 4e-2, |t, p| {
        let x = t.constant(x0.clone());
        let w1 = t.param(p);
        let xw = t.matmul(x, w1);
        let h1 = t.spmm(Arc::clone(&adj), xw);
        let h1 = t.relu(h1);
        let w2v = t.constant(w2.clone());
        let h2 = t.matmul(h1, w2v);
        let logits = t.spmm(Arc::clone(&adj), h2);
        let l = t.softmax_cross_entropy(logits, Arc::clone(&labels));
        (w1, l)
    });
}
