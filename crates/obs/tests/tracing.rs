//! Integration tests of the tracing facade: span nesting and ordering
//! across threads, counter aggregation under contention, and JSONL schema
//! guarantees.
//!
//! Capture sessions serialise on a global lock inside `testing::capture`,
//! but the *sink* is process-global, so a test that emits while another
//! test's capture is active would leak into that buffer. Every test
//! therefore uses unique event names and filters its captured lines to
//! them — the discipline that keeps this file safe under the default
//! parallel test runner.

use mcond_obs::{testing, Json};

fn named<'a>(lines: &'a [Json], names: &[&str]) -> Vec<&'a Json> {
    lines
        .iter()
        .filter(|l| {
            l.get("name").and_then(Json::as_str).is_some_and(|n| names.contains(&n))
        })
        .collect()
}

fn kind_of(line: &Json) -> &str {
    line.get("ev").and_then(Json::as_str).expect("every record has an ev kind")
}

#[test]
fn span_nesting_builds_paths_and_durations() {
    let cap = testing::capture();
    {
        let _outer = mcond_obs::span("nest_outer");
        {
            let _inner = mcond_obs::span_with("nest_inner", vec![("k", 7u64.into())]);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    let all = cap.parsed_lines();
    let lines = named(&all, &["nest_outer", "nest_inner"]);
    let ends: Vec<_> = lines.iter().filter(|l| kind_of(l) == "span").collect();
    assert_eq!(ends.len(), 2);
    // Inner closes first with the nested path; outer closes last.
    assert_eq!(ends[0].get("path").and_then(Json::as_str), Some("nest_outer/nest_inner"));
    assert_eq!(ends[1].get("path").and_then(Json::as_str), Some("nest_outer"));
    // Durations are measured and nested: outer >= inner >= the sleep.
    let inner_us = ends[0].get("us").and_then(Json::as_f64).unwrap();
    let outer_us = ends[1].get("us").and_then(Json::as_f64).unwrap();
    assert!(inner_us >= 2_000.0, "inner {inner_us}us");
    assert!(outer_us >= inner_us, "outer {outer_us} < inner {inner_us}");
    // Fields survive on both records of the inner span.
    let starts: Vec<_> = lines.iter().filter(|l| kind_of(l) == "span_start").collect();
    assert_eq!(
        starts[1].get("fields").and_then(|f| f.get("k")).and_then(Json::as_f64),
        Some(7.0)
    );
}

#[test]
fn spans_interleave_but_nest_correctly_across_threads() {
    let cap = testing::capture();
    let workers: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let _t = mcond_obs::span_with("mt_worker", vec![("idx", i.into())]);
                for _ in 0..3 {
                    let _step = mcond_obs::span("mt_step");
                    std::hint::black_box(0u64);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let all = cap.parsed_lines();
    let lines = named(&all, &["mt_worker", "mt_step"]);

    // Per thread, replay the event stream against a stack: starts push,
    // ends must match the top — proving nesting never leaks across threads.
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut per_thread_ends: HashMap<u64, usize> = HashMap::new();
    for line in &lines {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let tid = line.get("tid").and_then(Json::as_f64).unwrap() as u64;
        let name = line.get("name").and_then(Json::as_str).unwrap().to_owned();
        let path = line.get("path").and_then(Json::as_str).unwrap().to_owned();
        let stack = stacks.entry(tid).or_default();
        match kind_of(line) {
            "span_start" => {
                stack.push(name.clone());
                assert_eq!(path, stack.join("/"), "start path mismatch on thread {tid}");
            }
            "span" => {
                assert_eq!(stack.join("/"), path, "end path mismatch on thread {tid}");
                assert_eq!(stack.pop(), Some(name));
                *per_thread_ends.entry(tid).or_default() += 1;
            }
            other => panic!("unexpected event {other}"),
        }
    }
    // Every stack drained, every thread produced its 4 span ends.
    assert!(stacks.values().all(Vec::is_empty));
    assert_eq!(per_thread_ends.len(), 4);
    assert!(per_thread_ends.values().all(|&n| n == 4));
    // seq is globally unique and increasing in emission order.
    let seqs: Vec<f64> =
        lines.iter().map(|l| l.get("seq").and_then(Json::as_f64).unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[1] > w[0]), "seq not strictly increasing: {seqs:?}");
}

#[test]
fn counters_aggregate_across_threads() {
    let _cap = testing::capture();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..1000 {
                    mcond_obs::counter_add("test.aggregation", 3);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = mcond_obs::snapshot();
    assert_eq!(snap.counter("test.aggregation"), 8 * 1000 * 3);
}

#[test]
fn histograms_record_through_the_registry() {
    let cap = testing::capture();
    for v in [1.0, 2.0, 4.0, 1000.0] {
        mcond_obs::histogram_record("test.latency", v);
    }
    mcond_obs::gauge_set("test.gauge", 0.25);
    let snap = mcond_obs::snapshot();
    let h = snap.histogram("test.latency").expect("histogram recorded");
    assert_eq!(h.count, 4);
    assert_eq!(h.max, 1000.0);
    assert!(h.p99 >= h.p50);
    assert!(snap.gauges.contains(&("test.gauge".to_owned(), 0.25)));

    // emit_snapshot writes a parseable metrics record.
    mcond_obs::emit_snapshot("hist_unit");
    let all = cap.parsed_lines();
    let lines = named(&all, &["hist_unit"]);
    assert_eq!(lines.len(), 1);
    assert_eq!(kind_of(lines[0]), "metrics");
    let metrics = lines[0].get("metrics").expect("payload");
    assert!(metrics.get("histograms").and_then(|h| h.get("test.latency")).is_some());
}

#[test]
fn points_carry_fields_and_thread_ids() {
    let cap = testing::capture();
    mcond_obs::point(
        "point_loss",
        &[("step", 3u64.into()), ("l_gra", 0.125f32.into()), ("phase", "outer".into())],
    );
    let all = cap.parsed_lines();
    let lines = named(&all, &["point_loss"]);
    assert_eq!(lines.len(), 1);
    let fields = lines[0].get("fields").unwrap();
    assert_eq!(fields.get("step").and_then(Json::as_f64), Some(3.0));
    assert_eq!(fields.get("l_gra").and_then(Json::as_f64), Some(0.125));
    assert_eq!(fields.get("phase").and_then(Json::as_str), Some("outer"));
    assert!(lines[0].get("tid").is_some());
    assert!(lines[0].get("t_us").is_some());
}

#[test]
fn capture_session_only_sees_its_own_window() {
    // Events emitted before a capture opens never appear in it.
    {
        let pre = testing::capture();
        let _s = mcond_obs::span("window_before");
        drop(_s);
        drop(pre);
    }
    let cap = testing::capture();
    let lines = cap.parsed_lines();
    assert!(named(&lines, &["window_before"]).is_empty());
}
