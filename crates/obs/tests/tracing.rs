//! Integration tests of the tracing facade: span nesting and ordering
//! across threads, counter aggregation under contention, and JSONL schema
//! guarantees.
//!
//! Capture sessions serialise on a global lock inside `testing::capture`,
//! but the *sink* is process-global, so a test that emits while another
//! test's capture is active would leak into that buffer. Every test
//! therefore uses unique event names and filters its captured lines to
//! them — the discipline that keeps this file safe under the default
//! parallel test runner.

use mcond_obs::{testing, Json};

fn named<'a>(lines: &'a [Json], names: &[&str]) -> Vec<&'a Json> {
    lines
        .iter()
        .filter(|l| {
            l.get("name").and_then(Json::as_str).is_some_and(|n| names.contains(&n))
        })
        .collect()
}

fn kind_of(line: &Json) -> &str {
    line.get("ev").and_then(Json::as_str).expect("every record has an ev kind")
}

#[test]
fn span_nesting_builds_paths_and_durations() {
    let cap = testing::capture();
    {
        let _outer = mcond_obs::span("nest_outer");
        {
            let _inner = mcond_obs::span_with("nest_inner", vec![("k", 7u64.into())]);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    let all = cap.parsed_lines();
    let lines = named(&all, &["nest_outer", "nest_inner"]);
    let ends: Vec<_> = lines.iter().filter(|l| kind_of(l) == "span").collect();
    assert_eq!(ends.len(), 2);
    // Inner closes first with the nested path; outer closes last.
    assert_eq!(ends[0].get("path").and_then(Json::as_str), Some("nest_outer/nest_inner"));
    assert_eq!(ends[1].get("path").and_then(Json::as_str), Some("nest_outer"));
    // Durations are measured and nested: outer >= inner >= the sleep.
    let inner_us = ends[0].get("us").and_then(Json::as_f64).unwrap();
    let outer_us = ends[1].get("us").and_then(Json::as_f64).unwrap();
    assert!(inner_us >= 2_000.0, "inner {inner_us}us");
    assert!(outer_us >= inner_us, "outer {outer_us} < inner {inner_us}");
    // Fields survive on both records of the inner span.
    let starts: Vec<_> = lines.iter().filter(|l| kind_of(l) == "span_start").collect();
    assert_eq!(
        starts[1].get("fields").and_then(|f| f.get("k")).and_then(Json::as_f64),
        Some(7.0)
    );
}

#[test]
fn spans_interleave_but_nest_correctly_across_threads() {
    let cap = testing::capture();
    let workers: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let _t = mcond_obs::span_with("mt_worker", vec![("idx", i.into())]);
                for _ in 0..3 {
                    let _step = mcond_obs::span("mt_step");
                    std::hint::black_box(0u64);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let all = cap.parsed_lines();
    let lines = named(&all, &["mt_worker", "mt_step"]);

    // Per thread, replay the event stream against a stack: starts push,
    // ends must match the top — proving nesting never leaks across threads.
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut per_thread_ends: HashMap<u64, usize> = HashMap::new();
    for line in &lines {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let tid = line.get("tid").and_then(Json::as_f64).unwrap() as u64;
        let name = line.get("name").and_then(Json::as_str).unwrap().to_owned();
        let path = line.get("path").and_then(Json::as_str).unwrap().to_owned();
        let stack = stacks.entry(tid).or_default();
        match kind_of(line) {
            "span_start" => {
                stack.push(name.clone());
                assert_eq!(path, stack.join("/"), "start path mismatch on thread {tid}");
            }
            "span" => {
                assert_eq!(stack.join("/"), path, "end path mismatch on thread {tid}");
                assert_eq!(stack.pop(), Some(name));
                *per_thread_ends.entry(tid).or_default() += 1;
            }
            other => panic!("unexpected event {other}"),
        }
    }
    // Every stack drained, every thread produced its 4 span ends.
    assert!(stacks.values().all(Vec::is_empty));
    assert_eq!(per_thread_ends.len(), 4);
    assert!(per_thread_ends.values().all(|&n| n == 4));
    // seq is globally unique and increasing in emission order.
    let seqs: Vec<f64> =
        lines.iter().map(|l| l.get("seq").and_then(Json::as_f64).unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[1] > w[0]), "seq not strictly increasing: {seqs:?}");
}

#[test]
fn counters_aggregate_across_threads() {
    let _cap = testing::capture();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..1000 {
                    mcond_obs::counter_add("test.aggregation", 3);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = mcond_obs::snapshot();
    assert_eq!(snap.counter("test.aggregation"), 8 * 1000 * 3);
}

#[test]
fn histograms_record_through_the_registry() {
    let cap = testing::capture();
    for v in [1.0, 2.0, 4.0, 1000.0] {
        mcond_obs::histogram_record("test.latency", v);
    }
    mcond_obs::gauge_set("test.gauge", 0.25);
    let snap = mcond_obs::snapshot();
    let h = snap.histogram("test.latency").expect("histogram recorded");
    assert_eq!(h.count, 4);
    assert_eq!(h.max, 1000.0);
    assert!(h.p99 >= h.p50);
    assert!(snap.gauges.contains(&("test.gauge".to_owned(), 0.25)));

    // emit_snapshot writes a parseable metrics record.
    mcond_obs::emit_snapshot("hist_unit");
    let all = cap.parsed_lines();
    let lines = named(&all, &["hist_unit"]);
    assert_eq!(lines.len(), 1);
    assert_eq!(kind_of(lines[0]), "metrics");
    let metrics = lines[0].get("metrics").expect("payload");
    assert!(metrics.get("histograms").and_then(|h| h.get("test.latency")).is_some());
}

#[test]
fn points_carry_fields_and_thread_ids() {
    let cap = testing::capture();
    mcond_obs::point(
        "point_loss",
        &[("step", 3u64.into()), ("l_gra", 0.125f32.into()), ("phase", "outer".into())],
    );
    let all = cap.parsed_lines();
    let lines = named(&all, &["point_loss"]);
    assert_eq!(lines.len(), 1);
    let fields = lines[0].get("fields").unwrap();
    assert_eq!(fields.get("step").and_then(Json::as_f64), Some(3.0));
    assert_eq!(fields.get("l_gra").and_then(Json::as_f64), Some(0.125));
    assert_eq!(fields.get("phase").and_then(Json::as_str), Some("outer"));
    assert!(lines[0].get("tid").is_some());
    assert!(lines[0].get("t_us").is_some());
}

/// Regression for the span-stack leak across panic isolation: a guard
/// that never drops (forgotten here, but the same shape as a panic racing
/// a guard's construction) leaves its name on the stack; the enclosing
/// guard must truncate back to its own depth so later spans on the thread
/// report clean paths.
#[test]
fn span_stack_heals_after_a_panic_under_catch_unwind() {
    let cap = testing::capture();
    {
        let _outer = mcond_obs::span("leak_outer");
        let result = std::panic::catch_unwind(|| {
            let _inner = mcond_obs::span("leak_inner");
            let deeper = mcond_obs::span("leak_deeper");
            std::mem::forget(deeper); // leaked: its pop never runs
            panic!("boom inside span");
        });
        assert!(result.is_err());
        let _next = mcond_obs::span("leak_next");
    }
    let all = cap.parsed_lines();
    let next_end: Vec<_> = named(&all, &["leak_next"])
        .into_iter()
        .filter(|l| kind_of(l) == "span")
        .collect();
    assert_eq!(
        next_end[0].get("path").and_then(Json::as_str),
        Some("leak_outer/leak_next"),
        "leaked span corrupted the next span's path"
    );
    // The guard that unwound healed the stack and closed with its own path.
    let inner_end: Vec<_> = named(&all, &["leak_inner"])
        .into_iter()
        .filter(|l| kind_of(l) == "span")
        .collect();
    assert_eq!(inner_end[0].get("path").and_then(Json::as_str), Some("leak_outer/leak_inner"));
    let outer_end: Vec<_> = named(&all, &["leak_outer"])
        .into_iter()
        .filter(|l| kind_of(l) == "span")
        .collect();
    assert_eq!(outer_end[0].get("path").and_then(Json::as_str), Some("leak_outer"));
}

#[test]
fn trace_ids_stamp_records_and_scope_correctly() {
    let cap = testing::capture();
    assert_eq!(mcond_obs::current_trace(), 0);
    let first_id = {
        let t = mcond_obs::begin_trace();
        assert!(t.id() > 0);
        assert_eq!(mcond_obs::current_trace(), t.id());
        // ensure_trace keeps the active trace rather than replacing it.
        let kept = mcond_obs::ensure_trace();
        assert_eq!(kept.id(), t.id());
        drop(kept);
        assert_eq!(mcond_obs::current_trace(), t.id());
        let _s = mcond_obs::span("trace_span_a");
        mcond_obs::point("trace_point_a", &[]);
        t.id()
    };
    assert_eq!(mcond_obs::current_trace(), 0, "guard restores the no-trace state");
    let second_id = {
        let t = mcond_obs::begin_trace();
        let _s = mcond_obs::span("trace_span_b");
        t.id()
    };
    assert!(second_id > first_id, "trace ids are monotonically increasing");
    mcond_obs::point("trace_point_none", &[]);

    let all = cap.parsed_lines();
    #[allow(clippy::cast_precision_loss)]
    for l in named(&all, &["trace_span_a", "trace_point_a"]) {
        assert_eq!(l.get("trace").and_then(Json::as_f64), Some(first_id as f64));
    }
    #[allow(clippy::cast_precision_loss)]
    for l in named(&all, &["trace_span_b"]) {
        assert_eq!(l.get("trace").and_then(Json::as_f64), Some(second_id as f64));
    }
    // Records outside any trace omit the key entirely.
    for l in named(&all, &["trace_point_none"]) {
        assert_eq!(l.get("trace"), None);
    }
}

#[test]
fn trace_context_attributes_worker_spans_to_the_request() {
    let cap = testing::capture();
    let trace_id = {
        let t = mcond_obs::begin_trace();
        let _req = mcond_obs::span("ctx_request");
        let ctx = mcond_obs::capture_context();
        let worker = std::thread::spawn(move || {
            let _g = ctx.enter();
            let _k = mcond_obs::span("ctx_kernel");
        });
        worker.join().unwrap();
        // After the worker, this thread's own state is untouched.
        let _local = mcond_obs::span("ctx_local");
        t.id()
    };
    let all = cap.parsed_lines();
    let kernel: Vec<_> = named(&all, &["ctx_kernel"])
        .into_iter()
        .filter(|l| kind_of(l) == "span")
        .collect();
    assert_eq!(kernel.len(), 1);
    assert_eq!(
        kernel[0].get("path").and_then(Json::as_str),
        Some("ctx_request/ctx_kernel"),
        "worker span must splice under the submitting request's path"
    );
    #[allow(clippy::cast_precision_loss)]
    let expected = Some(trace_id as f64);
    assert_eq!(kernel[0].get("trace").and_then(Json::as_f64), expected);
    let local: Vec<_> = named(&all, &["ctx_local"])
        .into_iter()
        .filter(|l| kind_of(l) == "span")
        .collect();
    assert_eq!(local[0].get("path").and_then(Json::as_str), Some("ctx_request/ctx_local"));
}

#[test]
fn flight_recorder_keeps_a_bounded_trace_stamped_ring() {
    use mcond_obs::flight;
    let cap = testing::capture();
    flight::clear();
    flight::enable(true);
    let trace_id = {
        let t = mcond_obs::begin_trace();
        for i in 0..(flight::CAPACITY + 50) {
            flight::note("flight_evt", i as u64);
        }
        assert_eq!(flight::recorded(), flight::CAPACITY, "ring is bounded");
        t.id()
    };
    let dumped = flight::dump("flight_dump_unit");
    flight::enable(false);
    let events = dumped.as_arr().expect("dump returns the event array");
    assert_eq!(events.len(), flight::CAPACITY);
    // Oldest-first: the last event is the newest note.
    let last = events.last().unwrap();
    #[allow(clippy::cast_precision_loss)]
    {
        assert_eq!(last.get("arg").and_then(Json::as_f64), Some((flight::CAPACITY + 49) as f64));
        assert_eq!(last.get("trace").and_then(Json::as_f64), Some(trace_id as f64));
    }
    // The emitted record parses back with the same payload.
    let all = cap.parsed_lines();
    let dumps = named(&all, &["flight_dump_unit"]);
    assert_eq!(dumps.len(), 1);
    assert_eq!(kind_of(dumps[0]), "flight");
    assert_eq!(
        dumps[0].get("events").and_then(Json::as_arr).map(<[Json]>::len),
        Some(flight::CAPACITY)
    );
    flight::clear();
}

#[test]
fn profiler_folds_spans_into_a_call_tree() {
    let cap = testing::capture();
    mcond_obs::profile::start();
    for _ in 0..3 {
        let _root = mcond_obs::span("prof_root");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _leaf = mcond_obs::span("prof_leaf");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let profile = mcond_obs::profile::stop();
    let root = profile.get("prof_root").expect("root profiled");
    let leaf = profile.get("prof_root/prof_leaf").expect("leaf profiled");
    assert_eq!((root.calls, leaf.calls), (3, 3));
    assert!(root.total_us >= leaf.total_us);
    // Self time = total minus direct children; leaves keep everything.
    assert_eq!(root.self_us, root.total_us - leaf.total_us);
    assert_eq!(leaf.self_us, leaf.total_us);
    assert!(root.self_us >= 3 * 2_000, "root self time covers its sleeps");
    // Both renderings mention the nested path.
    assert!(profile.folded().contains("prof_root;prof_leaf "));
    assert!(profile.table().contains("prof_root/prof_leaf"));
    // Entries are sorted by descending self time.
    let selfs: Vec<u64> = profile.entries().iter().map(|e| e.self_us).collect();
    assert!(selfs.windows(2).all(|w| w[0] >= w[1]));
    // Offline folding over the captured JSONL agrees on the call tree.
    let offline = mcond_obs::Profile::from_jsonl(&cap.text());
    assert_eq!(offline.get("prof_root").unwrap().calls, 3);
    assert_eq!(offline.get("prof_root/prof_leaf").unwrap().calls, 3);
}

/// The sharded registry must resolve concurrent gauge writes to the
/// globally last write, not an arbitrary shard's value.
#[test]
fn gauges_resolve_last_write_wins_across_shards() {
    let _cap = testing::capture();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let b = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                b.wait();
                mcond_obs::gauge_set("test.lww", f64::from(i));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // This write happens after every thread joined: it is globally last
    // and must win over every other shard's entry.
    mcond_obs::gauge_set("test.lww", 42.0);
    let snap = mcond_obs::snapshot();
    assert!(
        snap.gauges.contains(&("test.lww".to_owned(), 42.0)),
        "stale shard won: {:?}",
        snap.gauges
    );
}

#[test]
fn span_timed_feeds_its_histogram_and_emits_a_span() {
    let cap = testing::capture();
    {
        let _t = mcond_obs::span_timed("timed_unit", "test.timed_unit_us");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let snap = mcond_obs::snapshot();
    let h = snap.histogram("test.timed_unit_us").expect("histogram fed on close");
    assert_eq!(h.count, 1);
    assert!(h.max >= 1_000.0, "measured {}us", h.max);
    let all = cap.parsed_lines();
    let ends =
        named(&all, &["timed_unit"]).into_iter().filter(|l| kind_of(l) == "span").count();
    assert_eq!(ends, 1, "span_timed is a real span while events are on");
}

#[test]
fn capture_session_only_sees_its_own_window() {
    // Events emitted before a capture opens never appear in it.
    {
        let pre = testing::capture();
        let _s = mcond_obs::span("window_before");
        drop(_s);
        drop(pre);
    }
    let cap = testing::capture();
    let lines = cap.parsed_lines();
    assert!(named(&lines, &["window_before"]).is_empty());
}
