//! In-process self-profiler: folds span close events into a call tree.
//!
//! [`start`] switches collection on (independent of any sink — the hot
//! path stays one atomic load per span); [`stop`] switches it off and
//! returns the folded [`Profile`]: per span path, the call count, total
//! wall time, and *self* time (total minus the totals of direct children).
//! The identical folding runs offline over any JSONL event log via
//! [`Profile::from_jsonl`] — that is what the `trace-report` bin does.
//!
//! Rendered two ways: [`Profile::table`] (sorted text table, self-time
//! descending) and [`Profile::folded`] (semicolon-separated folded-stack
//! lines, the input format of the common flamegraph tooling).

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// path → (calls, total µs), accumulated live while profiling is on.
type Totals = BTreeMap<String, (u64, u64)>;

fn collector() -> MutexGuard<'static, Option<Totals>> {
    static COLLECTOR: OnceLock<Mutex<Option<Totals>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(None)).lock().unwrap_or_else(PoisonError::into_inner)
}

/// Starts (or restarts, discarding prior data) profile collection:
/// spans closed anywhere in the process from now on fold into the profile.
pub fn start() {
    *collector() = Some(Totals::new());
    crate::sink::flag_set(crate::sink::PROFILE, true);
}

/// Stops collection and returns the folded profile.
#[must_use]
pub fn stop() -> Profile {
    crate::sink::flag_set(crate::sink::PROFILE, false);
    Profile::from_totals(&collector().take().unwrap_or_default())
}

/// Folds one span close into the live profile; no-op (one atomic load)
/// unless collection is on.
pub(crate) fn fold(path: &str, dur_us: u64) {
    if crate::sink::flags() & crate::sink::PROFILE == 0 {
        return;
    }
    let mut guard = collector();
    if let Some(map) = guard.as_mut() {
        let entry = map.entry(path.to_owned()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += dur_us;
    }
}

/// One folded call-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Slash-joined span path.
    pub path: String,
    /// Number of closes observed at this path.
    pub calls: u64,
    /// Total wall time across calls, microseconds.
    pub total_us: u64,
    /// Total minus the totals of direct children, microseconds.
    pub self_us: u64,
}

/// A folded call-tree profile; entries sorted by descending self time.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    entries: Vec<ProfileEntry>,
}

impl Profile {
    fn from_totals(map: &Totals) -> Profile {
        let mut child_totals: BTreeMap<&str, u64> = BTreeMap::new();
        for (path, (_, total)) in map {
            if let Some((parent, _)) = path.rsplit_once('/') {
                *child_totals.entry(parent).or_insert(0) += *total;
            }
        }
        let mut entries: Vec<ProfileEntry> = map
            .iter()
            .map(|(path, &(calls, total_us))| ProfileEntry {
                self_us: total_us
                    .saturating_sub(child_totals.get(path.as_str()).copied().unwrap_or(0)),
                path: path.clone(),
                calls,
                total_us,
            })
            .collect();
        entries.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.path.cmp(&b.path)));
        Profile { entries }
    }

    /// Rebuilds a profile offline from a JSONL event log: every `span`
    /// record's `path`/`us` pair folds exactly like live collection.
    /// Non-JSON lines and other record kinds are skipped.
    #[must_use]
    pub fn from_jsonl(text: &str) -> Profile {
        let mut map = Totals::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(j) = Json::parse(line) else { continue };
            if j.get("ev").and_then(Json::as_str) != Some("span") {
                continue;
            }
            let Some(path) = j.get("path").and_then(Json::as_str) else { continue };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let us = j.get("us").and_then(Json::as_f64).unwrap_or(0.0).max(0.0) as u64;
            let entry = map.entry(path.to_owned()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += us;
        }
        Profile::from_totals(&map)
    }

    /// Entries sorted by descending self time.
    #[must_use]
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Looks up one exact path.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted text table (self-time descending), one row per path.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = format!("{:>9}  {:>12}  {:>12}  path\n", "calls", "total_ms", "self_ms");
        #[allow(clippy::cast_precision_loss)]
        for e in &self.entries {
            out.push_str(&format!(
                "{:>9}  {:>12.3}  {:>12.3}  {}\n",
                e.calls,
                e.total_us as f64 / 1000.0,
                e.self_us as f64 / 1000.0,
                e.path
            ));
        }
        out
    }

    /// Folded-stack lines (`root;child;leaf self_us`), the flamegraph
    /// input format, sorted lexicographically.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|e| format!("{} {}", e.path.replace('/', ";"), e.self_us))
            .collect();
        lines.sort();
        lines.join("\n")
    }
}
