//! Named counters, gauges, and histograms with a thread-sharded registry.
//!
//! Kernels report work here (`linalg.matmul.flops` and its SpMM mirror
//! `sparse.spmm.flops` — both 2·(multiply-adds), so a counter delta over a
//! timed call yields FLOP/s directly, as the `kernels_simd` bench does —
//! plus `sparse.spmm.nnz`, `sparse.spmm.bytes`, …) and serving paths
//! record latency distributions. Recording is gated on
//! [`crate::metrics_on`], so with no sink and no explicit opt-in every call
//! is a single atomic load. When on, each thread accumulates into its own
//! shard (an uncontended per-thread mutex), so 4 worker threads hammering
//! `counter_add` never serialise on a global lock; [`snapshot`] merges the
//! shards — counters sum, histograms [`Histogram::merge`] exactly, gauges
//! resolve last-write-wins via a global write stamp — into a
//! [`MetricsSnapshot`] that serialises to JSON — the unit the bench harness
//! folds into its result dumps and `emit_snapshot` writes to the event log.

use crate::json::Json;
use crate::sink::{emit, enabled, metrics_on, Record};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A log-bucketed histogram of non-negative samples.
///
/// Buckets are powers of two (bucket `i` holds values in `[2^(i-1), 2^i)`,
/// bucket 0 holds `[0, 1)`), which gives ~2x-resolution quantiles over any
/// range without configuration — plenty for latency and fanout tracking.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    /// Same as [`Histogram::new`]. (A derived `Default` would start
    /// `min` at `0.0` instead of `+∞`, permanently pinning the reported
    /// minimum of any histogram created through `or_default()` to zero.)
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, buckets: Vec::new() }
    }

    /// Records one sample (negative samples clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += *src;
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) with within-bucket linear
    /// interpolation: the fractional rank is located inside its bucket and
    /// the estimate interpolates between the bucket's bounds, assuming
    /// samples spread uniformly within it. Clamped to the observed
    /// `[min, max]`, so the tails never overshoot the data.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let lo_rank = seen as f64;
            seen += n;
            #[allow(clippy::cast_precision_loss)]
            let hi_rank = seen as f64;
            if rank < hi_rank {
                let (lo, hi) = bucket_bounds(i);
                // Midpoint convention: the k-th of n samples in a bucket
                // sits at fraction (k + 0.5) / n of the bucket's width.
                #[allow(clippy::cast_precision_loss)]
                let frac = ((rank - lo_rank) + 0.5) / n as f64;
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freezes into the summary statistics used in reports.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: if self.count == 0 { 0.0 } else { self.sum / self.count as f64 },
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if v < 1.0 {
        0
    } else {
        // 1 + floor(log2(v)), capped to a sane bucket count.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = 1 + v.log2().floor() as usize;
        idx.min(128)
    }
}

/// `[lo, hi)` value bounds of bucket `i` (inverse of [`bucket_index`]).
fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 1.0)
    } else {
        let hi = 2f64.powi(i32::try_from(i).unwrap_or(i32::MAX));
        (hi / 2.0, hi)
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSummary {
    /// JSON object with every summary statistic.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("mean", self.mean)
            .with("min", self.min)
            .with("max", self.max)
            .with("p50", self.p50)
            .with("p90", self.p90)
            .with("p99", self.p99)
    }
}

/// A frozen copy of metric state, ready for reporting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (name, total).
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges (name, value).
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries (name, summary).
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// JSON object `{counters: {...}, gauges: {...}, histograms: {...}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.insert(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.insert(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, v) in &self.histograms {
            histograms.insert(k, v.to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }

    /// Counter total by name (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram summary by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// One thread's private accumulator. Gauges carry the global write stamp
/// taken at set time so the merge can resolve last-write-wins across
/// shards.
#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, (u64, f64)>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Monotonic stamp ordering gauge writes across shards.
static GAUGE_STAMP: AtomicU64 = AtomicU64::new(1);

/// Every live (and dead — shards outlive their thread) shard, for merging.
fn shards() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    static SHARDS: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<Shard>>>> = const { RefCell::new(None) };
}

/// Runs `f` on the calling thread's shard, creating and registering it on
/// first use. The per-shard mutex is uncontended except while a concurrent
/// [`snapshot`]/[`reset_metrics`] briefly visits, so the hot path is one
/// thread-local read plus one uncontended lock.
fn with_local_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(Shard::default()));
            shards().lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&arc));
            arc
        });
        f(&mut arc.lock().unwrap_or_else(PoisonError::into_inner));
    });
}

/// Adds `delta` to the named counter. No-op unless metrics are on.
pub fn counter_add(name: &'static str, delta: u64) {
    if !metrics_on() {
        return;
    }
    with_local_shard(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Sets the named gauge (last write across all threads wins). No-op unless
/// metrics are on.
pub fn gauge_set(name: &'static str, value: f64) {
    if !metrics_on() {
        return;
    }
    let stamp = GAUGE_STAMP.fetch_add(1, Ordering::Relaxed);
    with_local_shard(|s| {
        s.gauges.insert(name, (stamp, value));
    });
}

/// Records a sample into the named histogram. No-op unless metrics are on.
pub fn histogram_record(name: &'static str, value: f64) {
    if !metrics_on() {
        return;
    }
    with_local_shard(|s| s.histograms.entry(name).or_default().record(value));
}

/// Freezes the registry into a snapshot: counters sum across shards,
/// histograms merge exactly, gauges keep the latest-stamped write.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let shards: Vec<Arc<Mutex<Shard>>> =
        shards().lock().unwrap_or_else(PoisonError::into_inner).clone();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    for shard in &shards {
        let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        for (k, v) in &s.counters {
            *counters.entry((*k).to_owned()).or_insert(0) += v;
        }
        for (k, &(stamp, value)) in &s.gauges {
            let slot = gauges.entry((*k).to_owned()).or_insert((0, 0.0));
            if stamp > slot.0 {
                *slot = (stamp, value);
            }
        }
        for (k, h) in &s.histograms {
            histograms.entry((*k).to_owned()).or_default().merge(h);
        }
    }
    MetricsSnapshot {
        counters: counters.into_iter().collect(),
        gauges: gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
        histograms: histograms.into_iter().map(|(k, h)| (k, h.summary())).collect(),
    }
}

/// Clears every counter, gauge, and histogram in every shard.
pub fn reset_metrics() {
    let shards: Vec<Arc<Mutex<Shard>>> =
        shards().lock().unwrap_or_else(PoisonError::into_inner).clone();
    for shard in &shards {
        let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
        s.counters.clear();
        s.gauges.clear();
        s.histograms.clear();
    }
}

/// Writes the current registry snapshot to the event log as a `metrics`
/// record labelled `name`. No-op when the sink is disabled.
pub fn emit_snapshot(name: &str) {
    if !enabled() {
        return;
    }
    let snap = snapshot();
    emit(&Record {
        kind: "metrics",
        name,
        path: None,
        dur_us: None,
        depth: 0,
        trace: crate::trace::current_trace(),
        fields: &[],
        payload: Some(snap.to_json()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_moments_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        // Log buckets: the median estimate lands within a factor of two.
        assert!(s.p50 >= 32.0 && s.p50 <= 100.0, "p50 {}", s.p50);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0.5, 3.0, 17.0, 200.0] {
            a.record(v);
            all.record(v);
        }
        for v in [1.5, 9.0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.mean, s.p50), (0.0, 0.0, 0.0, 0.0));
    }

    /// Regression: a `Default`-constructed histogram (the registry's
    /// `or_default()` path) must report the true minimum, not a zero
    /// baked in by a derived `Default`.
    #[test]
    fn default_histogram_reports_the_true_minimum() {
        assert_eq!(Histogram::default(), Histogram::new());
        let mut h = Histogram::default();
        h.record(7.5);
        h.record(3.25);
        let s = h.summary();
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 7.5);
    }

    /// Deterministic xorshift64* (the obs crate is dependency-free, so the
    /// accuracy tests carry their own generator).
    struct Rng(u64);
    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn uniform(&mut self) -> f64 {
            #[allow(clippy::cast_precision_loss)]
            let v = (self.next_u64() >> 11) as f64;
            v / (1u64 << 53) as f64
        }
        /// Standard normal via Box–Muller.
        fn normal(&mut self) -> f64 {
            let u = self.uniform().max(f64::MIN_POSITIVE);
            let v = self.uniform();
            (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
        }
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn assert_quantile_accuracy(samples: &[f64], tol: f64, label: &str) {
        let mut h = Histogram::new();
        let mut sorted = samples.to_vec();
        for &v in samples {
            h.record(v);
        }
        sorted.sort_by(f64::total_cmp);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact.abs().max(1e-12);
            assert!(
                rel <= tol,
                "{label} q={q}: estimate {est} vs exact {exact} (rel err {rel:.3} > {tol})"
            );
        }
    }

    /// Within-bucket interpolation pins quantiles far tighter than the
    /// factor-of-two bucket edges: uniform samples interpolate almost
    /// exactly, log-normal samples (whose density bends inside a bucket)
    /// stay well inside one bucket width.
    #[test]
    fn quantile_interpolation_is_accurate_on_uniform_and_lognormal() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let uniform: Vec<f64> = (0..20_000).map(|_| rng.uniform() * 1000.0).collect();
        assert_quantile_accuracy(&uniform, 0.05, "uniform[0,1000)");

        let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
        let lognormal: Vec<f64> = (0..20_000).map(|_| (3.0 + rng.normal()).exp()).collect();
        assert_quantile_accuracy(&lognormal, 0.35, "lognormal(3,1)");
    }

    /// The tails never leave the observed range.
    #[test]
    fn quantile_extremes_clamp_to_observed_range() {
        let mut h = Histogram::new();
        for v in [3.0, 5.0, 100.0] {
            h.record(v);
        }
        assert!(h.quantile(0.0) >= 3.0);
        assert!(h.quantile(1.0) <= 100.0);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let mut h = Histogram::new();
        h.record(10.0);
        let snap = MetricsSnapshot {
            counters: vec![("flops".into(), 42)],
            gauges: vec![("loss".into(), 0.5)],
            histograms: vec![("lat".into(), h.summary())],
        };
        let j = snap.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("flops")).and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            j.get("histograms")
                .and_then(|h| h.get("lat"))
                .and_then(|l| l.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(snap.counter("flops"), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("lat").is_some());
    }
}
