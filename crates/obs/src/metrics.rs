//! Named counters, gauges, and histograms with a process-global registry.
//!
//! Kernels report work here (`linalg.matmul.flops`, `sparse.spmm.nnz`, …)
//! and serving paths record latency distributions. Recording is gated on
//! [`crate::metrics_on`], so with no sink and no explicit opt-in every call
//! is a single atomic load. [`snapshot`] freezes the registry into a
//! [`MetricsSnapshot`] that serialises to JSON — the unit the bench harness
//! folds into its result dumps and `emit_snapshot` writes to the event log.

use crate::json::Json;
use crate::sink::{emit, enabled, metrics_on, Record};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A log-bucketed histogram of non-negative samples.
///
/// Buckets are powers of two (bucket `i` holds values in `[2^(i-1), 2^i)`,
/// bucket 0 holds `[0, 1)`), which gives ~2x-resolution quantiles over any
/// range without configuration — plenty for latency and fanout tracking.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    /// Same as [`Histogram::new`]. (A derived `Default` would start
    /// `min` at `0.0` instead of `+∞`, permanently pinning the reported
    /// minimum of any histogram created through `or_default()` to zero.)
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, buckets: Vec::new() }
    }

    /// Records one sample (negative samples clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += *src;
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) from the bucket boundaries;
    /// exact for min/max, within one power of two otherwise.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64).min(self.count - 1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                // Upper edge of bucket i, clamped to the observed range.
                let edge = if i == 0 { 1.0 } else { 2f64.powi(i32::try_from(i).unwrap_or(i32::MAX)) };
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freezes into the summary statistics used in reports.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: if self.count == 0 { 0.0 } else { self.sum / self.count as f64 },
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if v < 1.0 {
        0
    } else {
        // 1 + floor(log2(v)), capped to a sane bucket count.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = 1 + v.log2().floor() as usize;
        idx.min(128)
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSummary {
    /// JSON object with every summary statistic.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("mean", self.mean)
            .with("min", self.min)
            .with("max", self.max)
            .with("p50", self.p50)
            .with("p90", self.p90)
            .with("p99", self.p99)
    }
}

/// A frozen copy of metric state, ready for reporting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (name, total).
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges (name, value).
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries (name, summary).
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// JSON object `{counters: {...}, gauges: {...}, histograms: {...}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.insert(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.insert(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, v) in &self.histograms {
            histograms.insert(k, v.to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }

    /// Counter total by name (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram summary by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Adds `delta` to the named counter. No-op unless metrics are on.
pub fn counter_add(name: &'static str, delta: u64) {
    if !metrics_on() {
        return;
    }
    *registry().counters.entry(name).or_insert(0) += delta;
}

/// Sets the named gauge. No-op unless metrics are on.
pub fn gauge_set(name: &'static str, value: f64) {
    if !metrics_on() {
        return;
    }
    registry().gauges.insert(name, value);
}

/// Records a sample into the named histogram. No-op unless metrics are on.
pub fn histogram_record(name: &'static str, value: f64) {
    if !metrics_on() {
        return;
    }
    registry().histograms.entry(name).or_default().record(value);
}

/// Freezes the global registry into a snapshot.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        counters: reg.counters.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        gauges: reg.gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        histograms: reg.histograms.iter().map(|(k, v)| ((*k).to_owned(), v.summary())).collect(),
    }
}

/// Clears every counter, gauge, and histogram.
pub fn reset_metrics() {
    let mut reg = registry();
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

/// Writes the current registry snapshot to the event log as a `metrics`
/// record labelled `name`. No-op when the sink is disabled.
pub fn emit_snapshot(name: &str) {
    if !enabled() {
        return;
    }
    let snap = snapshot();
    emit(&Record {
        kind: "metrics",
        name,
        path: None,
        dur_us: None,
        depth: 0,
        fields: &[],
        payload: Some(snap.to_json()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_moments_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        // Log buckets: the median estimate lands within a factor of two.
        assert!(s.p50 >= 32.0 && s.p50 <= 100.0, "p50 {}", s.p50);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0.5, 3.0, 17.0, 200.0] {
            a.record(v);
            all.record(v);
        }
        for v in [1.5, 9.0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.mean, s.p50), (0.0, 0.0, 0.0, 0.0));
    }

    /// Regression: a `Default`-constructed histogram (the registry's
    /// `or_default()` path) must report the true minimum, not a zero
    /// baked in by a derived `Default`.
    #[test]
    fn default_histogram_reports_the_true_minimum() {
        assert_eq!(Histogram::default(), Histogram::new());
        let mut h = Histogram::default();
        h.record(7.5);
        h.record(3.25);
        let s = h.summary();
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let mut h = Histogram::new();
        h.record(10.0);
        let snap = MetricsSnapshot {
            counters: vec![("flops".into(), 42)],
            gauges: vec![("loss".into(), 0.5)],
            histograms: vec![("lat".into(), h.summary())],
        };
        let j = snap.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("flops")).and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            j.get("histograms")
                .and_then(|h| h.get("lat"))
                .and_then(|l| l.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(snap.counter("flops"), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("lat").is_some());
    }
}
