//! Observability substrate for the `mcond` workspace.
//!
//! Everything the condense→train→serve pipeline reports — hierarchical
//! timing spans, per-step losses, kernel work counters, serving latency
//! histograms — flows through this crate. It is deliberately dependency-free
//! (std only): the workspace builds hermetically, so even JSON encoding is
//! in-repo ([`json::Json`]).
//!
//! # Model
//!
//! * **Spans** ([`span`], [`span_with`], [`span_timed`]) are RAII guards
//!   over a thread-local stack; closing one emits a `span` record with its
//!   wall-clock duration and slash-joined path. [`span_timed`] also feeds
//!   a named histogram, and keeps timing even when only metrics are on.
//! * **Traces** ([`begin_trace`], [`ensure_trace`]) stamp a request-scoped
//!   id (the `trace` record field) onto every span/point emitted in scope;
//!   [`capture_context`]/[`TraceContext::enter`] carry that id — and the
//!   span path — across threads so pool workers attribute to the owning
//!   request.
//! * **Points** ([`point`]) are one-shot named measurements with structured
//!   fields (losses per step, sparsification counts, …).
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_record`])
//!   aggregate in a thread-sharded registry; [`snapshot`] merges the
//!   shards into a [`MetricsSnapshot`] for reports and [`emit_snapshot`]
//!   writes them to the event log.
//! * **Profiler** ([`profile::start`], [`profile::stop`]) folds span
//!   closes into a call-tree [`Profile`] (calls, total/self µs per path)
//!   with text-table and folded-stack renderings; [`Profile::from_jsonl`]
//!   does the same offline for any JSONL log.
//! * **Flight recorder** ([`flight::enable`], [`flight::dump`]) keeps a
//!   bounded per-thread ring of recent events (allocation-free after
//!   warm-up) that the serving layer dumps when a request panics.
//!
//! # Sinks
//!
//! Configured once from the environment (see [`sink`] docs): `MCOND_LOG`
//! selects the destination (`off` default, `stderr`, `pretty`, `jsonl`, or
//! a file path) and `MCOND_LOG_FORMAT` forces `pretty` or `jsonl`. With no
//! sink every probe is one relaxed atomic load — the hot kernels rely on
//! this being free.
//!
//! # Well-known metric names
//!
//! The serving layer (`mcond-core`'s `InductiveServer`) both keeps
//! per-server statistics and mirrors its failure tallies into the global
//! registry under stable names:
//!
//! * `serve.requests` — answered requests (per-server snapshot only);
//! * `serve.rejected` — requests refused with a typed `ServeError`
//!   (validation failure, batch cap, `Reject` fallback, non-finite
//!   logits);
//! * `serve.fallback` — *nodes* (not requests) whose empty or
//!   under-covered attachment row triggered the server's fallback policy;
//! * `serve.panic` — requests whose internal panic was caught at the
//!   `try_serve_many` request boundary;
//! * `serve.cache.builds` — frozen-base caches built (one per
//!   `with_serve_mode(ServeMode::FrozenBase)` call);
//! * `serve.cache.hits` — requests answered from the frozen-base cache
//!   (degraded requests fall through to the exact path and do not count);
//! * `serve.cache.bytes` — gauge: resident size of the frozen-base cache
//!   at build time;
//! * `serve.bytes_saved` — gauge: cumulative base-feature bytes the
//!   split-operator fast path did *not* copy (the per-request `N'×d×4`
//!   vstack the legacy extended path pays). Zero on
//!   `ServeMode::Extended`; the `fastpath_equivalence` test asserts it
//!   equals `requests × N'×d×4` on the fast path.
//!
//! The live-graph ingestion path (`mcond-core`'s `LiveBase`) reports its
//! promotion and refresh activity under the `delta.*` prefix, and how it
//! kept the frozen-base cache coherent under `serve.cache.patch.*`:
//!
//! * `delta.promotions` — promotion calls that grew the base;
//! * `delta.promoted_nodes` — nodes promoted into the base (a promotion
//!   may carry several);
//! * `delta.edges` — attachment + interconnect edges absorbed by
//!   promotions;
//! * `delta.refreshes` — incremental refreshes (Eq. 12–15 re-run + log
//!   replay);
//! * `delta.refresh.ms` — histogram: wall milliseconds per refresh;
//! * `serve.cache.patch.patched` — promotions whose frozen-base cache was
//!   patched in place (receptive-field closure fit the patch budget);
//! * `serve.cache.patch.rebuilt` — promotions that fell back to a full
//!   cache rebuild (closure exceeded the patch budget).
//!
//! The serving stage timers decompose every request's latency into the
//! paper's Eq. 11 pipeline, one histogram per stage (µs), recorded by
//! `span_timed` under the `serve` span:
//!
//! * `serve.stage.validate` — structural batch validation + batch cap;
//! * `serve.stage.attach` — incremental attachment build and coverage
//!   check (Eq. 10's `aM` row assembly);
//! * `serve.stage.fallback` — fallback-policy handling of under-covered
//!   nodes (absent when every node is covered);
//! * `serve.stage.propagate` — operator assembly + GNN forward
//!   (Eq. 11's propagation over the extended graph);
//! * `serve.stage.head` — output finalisation (finiteness audit).
//!
//! Span and point records carry a `trace` field (a process-unique positive
//! integer) when emitted inside a request scope; `try_serve*` assigns one
//! id per request, and pool workers inherit the submitter's id.
//!
//! Per-server snapshots additionally carry the `serve.latency_us`,
//! `serve.fanout`, `serve.batch_size`, and `serve.coverage` histograms
//! (coverage: fraction of each node's *absolute* incremental mass
//! surviving the sparsified mapping, clamped to `[0, 1]`). The parallel
//! pool contributes `par.pool.tasks` and `par.pool.threads`.
//!
//! The HTTP front end (`mcond-serve`) adds its own family under
//! `serve.http.*`:
//!
//! * `serve.http.requests` — HTTP requests parsed off sockets (every
//!   route, including rejected ones);
//! * `serve.http.admitted` — `/v1/serve` requests that passed admission
//!   control and entered the batching queue;
//! * `serve.http.shed` — requests answered `429` by load shedding
//!   (queue at capacity or queue-wait EWMA over threshold);
//! * `serve.http.bad_requests` — `/v1/serve` bodies rejected by the
//!   wire codec (malformed JSON, non-UTF-8, out-of-range entries);
//! * `serve.http.protocol_errors` — connections dropped for HTTP
//!   framing violations (each also answers its typed 4xx/5xx);
//! * `serve.http.timeouts` — mid-frame read stalls answered `408` plus
//!   queue replies that missed `reply_timeout` (`504`);
//! * `serve.http.batches` / `serve.http.coalesced` — fan-outs executed
//!   and requests merged into them (their ratio is the effective
//!   coalescing factor);
//! * `serve.http.conns` / `serve.http.conns_rejected` — connections
//!   accepted / refused at the `max_connections` bound;
//! * `serve.http.queue_depth`, `serve.http.queue_wait_ewma_us` —
//!   gauges: jobs waiting in the batching queue and the smoothed
//!   queue-wait backpressure signal;
//! * `serve.http.deadline_expired` — queued requests whose
//!   `x-mcond-deadline-ms` budget (or the configured default) ran out
//!   before fan-out; answered `503 deadline_exceeded`, never computed.
//!
//! Hot reload and batcher supervision emit `serve.reload.*` /
//! `serve.watchdog.*`:
//!
//! * `serve.reload.ok` — checkpoints validated, canaried, and swapped
//!   in (each bumps the serving epoch by exactly one);
//! * `serve.reload.failed` — reload attempts rejected by the store
//!   (CRC/shape/decode) or by the canary forward pass; the live epoch
//!   is untouched and the failure arms the exponential backoff;
//! * `serve.reload.rejected_busy` — attempts answered `409` because
//!   another reload held the admin lock;
//! * `serve.reload.rejected_backoff` — attempts answered `429` inside
//!   the post-failure backoff window;
//! * `serve.reload.epoch` — gauge: the currently serving epoch
//!   (mirrors the `x-mcond-epoch` response header);
//! * `serve.reload.ms` — histogram: wall time of successful reloads,
//!   load through swap;
//! * `serve.watchdog.restarts` — batcher threads respawned after a
//!   missed heartbeat (panic or stall); the flight recorder dumps a
//!   `serve.watchdog.stall` report on each;
//! * `serve.watchdog.orphans` — in-flight requests answered a typed
//!   `503` because their batcher generation was retired mid-service.
//!
//! # Example
//! ```
//! let _capture = mcond_obs::testing::capture();
//! {
//!     let mut s = mcond_obs::span_with("demo", vec![("n", 4u64.into())]);
//!     mcond_obs::point("demo.step", &[("loss", 0.5f32.into())]);
//!     s.record("result", 1u64);
//! }
//! let lines = _capture.parsed_lines();
//! assert_eq!(lines.len(), 3); // span_start, point, span
//! ```

pub mod flight;
pub mod json;
mod metrics;
pub mod profile;
mod sink;
mod span;
mod trace;

pub use json::Json;
pub use metrics::{
    counter_add, emit_snapshot, gauge_set, histogram_record, reset_metrics, snapshot, Histogram,
    HistogramSummary, MetricsSnapshot,
};
pub use profile::{Profile, ProfileEntry};
pub use sink::{enable_metrics, enabled, metrics_on, point, testing, thread_id, Field, LogFormat};
pub use span::{span, span_timed, span_with, SpanGuard};
pub use trace::{
    begin_trace, capture_context, current_trace, ensure_trace, ContextGuard, TraceContext,
    TraceGuard,
};
