//! Observability substrate for the `mcond` workspace.
//!
//! Everything the condense→train→serve pipeline reports — hierarchical
//! timing spans, per-step losses, kernel work counters, serving latency
//! histograms — flows through this crate. It is deliberately dependency-free
//! (std only): the workspace builds hermetically, so even JSON encoding is
//! in-repo ([`json::Json`]).
//!
//! # Model
//!
//! * **Spans** ([`span`], [`span_with`]) are RAII guards over a
//!   thread-local stack; closing one emits a `span` record with its
//!   wall-clock duration and slash-joined path.
//! * **Points** ([`point`]) are one-shot named measurements with structured
//!   fields (losses per step, sparsification counts, …).
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_record`])
//!   aggregate in a global registry; [`snapshot`] freezes them into a
//!   [`MetricsSnapshot`] for reports and [`emit_snapshot`] writes them to
//!   the event log.
//!
//! # Sinks
//!
//! Configured once from the environment (see [`sink`] docs): `MCOND_LOG`
//! selects the destination (`off` default, `stderr`, `pretty`, `jsonl`, or
//! a file path) and `MCOND_LOG_FORMAT` forces `pretty` or `jsonl`. With no
//! sink every probe is one relaxed atomic load — the hot kernels rely on
//! this being free.
//!
//! # Well-known metric names
//!
//! The serving layer (`mcond-core`'s `InductiveServer`) both keeps
//! per-server statistics and mirrors its failure tallies into the global
//! registry under stable names:
//!
//! * `serve.requests` — answered requests (per-server snapshot only);
//! * `serve.rejected` — requests refused with a typed `ServeError`
//!   (validation failure, batch cap, `Reject` fallback, non-finite
//!   logits);
//! * `serve.fallback` — *nodes* (not requests) whose empty or
//!   under-covered attachment row triggered the server's fallback policy;
//! * `serve.panic` — requests whose internal panic was caught at the
//!   `try_serve_many` request boundary;
//! * `serve.cache.builds` — frozen-base caches built (one per
//!   `with_serve_mode(ServeMode::FrozenBase)` call);
//! * `serve.cache.hits` — requests answered from the frozen-base cache
//!   (degraded requests fall through to the exact path and do not count);
//! * `serve.cache.bytes` — gauge: resident size of the frozen-base cache
//!   at build time;
//! * `serve.bytes_saved` — gauge: cumulative base-feature bytes the
//!   split-operator fast path did *not* copy (the per-request `N'×d×4`
//!   vstack the legacy extended path pays). Zero on
//!   `ServeMode::Extended`; the `fastpath_equivalence` test asserts it
//!   equals `requests × N'×d×4` on the fast path.
//!
//! Per-server snapshots additionally carry the `serve.latency_us`,
//! `serve.fanout`, `serve.batch_size`, and `serve.coverage` histograms
//! (coverage: fraction of each node's *absolute* incremental mass
//! surviving the sparsified mapping, clamped to `[0, 1]`). The parallel
//! pool contributes `par.pool.tasks` and `par.pool.threads`.
//!
//! # Example
//! ```
//! let _capture = mcond_obs::testing::capture();
//! {
//!     let mut s = mcond_obs::span_with("demo", vec![("n", 4u64.into())]);
//!     mcond_obs::point("demo.step", &[("loss", 0.5f32.into())]);
//!     s.record("result", 1u64);
//! }
//! let lines = _capture.parsed_lines();
//! assert_eq!(lines.len(), 3); // span_start, point, span
//! ```

pub mod json;
mod metrics;
mod sink;
mod span;

pub use json::Json;
pub use metrics::{
    counter_add, emit_snapshot, gauge_set, histogram_record, reset_metrics, snapshot, Histogram,
    HistogramSummary, MetricsSnapshot,
};
pub use sink::{enable_metrics, enabled, metrics_on, point, testing, thread_id, Field, LogFormat};
pub use span::{span, span_with, SpanGuard};
