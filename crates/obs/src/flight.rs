//! Per-thread flight recorder: a bounded ring of the most recent events,
//! dumped on demand — the serving layer dumps it when a caught panic turns
//! into `ServeError::Panicked`, so every post-mortem shows the microseconds
//! leading up to the crash with the panicking request's trace id attached.
//!
//! Recording is std-only and allocation-free after warm-up: the ring is
//! preallocated to [`CAPACITY`] on a thread's first event, entries are
//! `Copy` (`&'static str` names, integers), and overwrite in place once
//! full. The off path is one relaxed atomic load, like every other probe.

use crate::json::Json;
use crate::sink::{elapsed_us, emit, flag_set, flags, Record, FLIGHT};
use std::cell::RefCell;

/// Events retained per thread.
pub const CAPACITY: usize = 256;

#[derive(Clone, Copy)]
struct Event {
    t_us: u64,
    trace: u64,
    kind: &'static str,
    name: &'static str,
    arg: u64,
}

struct Ring {
    buf: Vec<Event>,
    next: usize,
}

thread_local! {
    static RING: RefCell<Ring> = const { RefCell::new(Ring { buf: Vec::new(), next: 0 }) };
}

/// Switches the flight recorder on or off process-wide.
pub fn enable(on: bool) {
    flag_set(FLIGHT, on);
}

/// Whether the recorder is on (one atomic load).
#[must_use]
pub fn active() -> bool {
    flags() & FLIGHT != 0
}

/// Records a free-form note event; no-op when the recorder is off.
pub fn note(name: &'static str, arg: u64) {
    if active() {
        record("note", name, arg);
    }
}

pub(crate) fn span_open(name: &'static str) {
    if active() {
        record("open", name, 0);
    }
}

pub(crate) fn span_close(name: &'static str, dur_us: u64) {
    if active() {
        record("close", name, dur_us);
    }
}

fn record(kind: &'static str, name: &'static str, arg: u64) {
    let ev = Event { t_us: elapsed_us(), trace: crate::trace::current_trace(), kind, name, arg };
    RING.with(|r| {
        let mut r = r.borrow_mut();
        if r.buf.capacity() < CAPACITY {
            // Warm-up: the only allocation this module ever performs.
            let need = CAPACITY - r.buf.capacity();
            r.buf.reserve_exact(need);
        }
        let next = r.next;
        if r.buf.len() < CAPACITY {
            r.buf.push(ev);
        } else {
            r.buf[next] = ev;
        }
        r.next = (next + 1) % CAPACITY;
    });
}

/// Number of events currently retained on this thread.
#[must_use]
pub fn recorded() -> usize {
    RING.with(|r| r.borrow().buf.len())
}

/// Discards this thread's retained events.
pub fn clear() {
    RING.with(|r| {
        let mut r = r.borrow_mut();
        r.buf.clear();
        r.next = 0;
    });
}

/// Dumps this thread's ring (oldest first) to the event log as a single
/// `flight` record named `label`, and returns the dumped events as a JSON
/// array (each `{t_us, trace, ev, name, arg}`) for in-process inspection.
/// The record itself carries the current trace id, so a dump fired from a
/// panic handler still points at the request that died.
pub fn dump(label: &str) -> Json {
    let events: Vec<Json> = RING.with(|r| {
        let r = r.borrow();
        let n = r.buf.len();
        (0..n)
            .map(|i| {
                let idx = if n < CAPACITY { i } else { (r.next + i) % CAPACITY };
                let e = &r.buf[idx];
                Json::obj()
                    .with("t_us", e.t_us)
                    .with("trace", e.trace)
                    .with("ev", e.kind)
                    .with("name", e.name)
                    .with("arg", e.arg)
            })
            .collect()
    });
    let payload = Json::Arr(events);
    emit(&Record {
        kind: "flight",
        name: label,
        path: None,
        dur_us: None,
        depth: 0,
        trace: crate::trace::current_trace(),
        fields: &[],
        payload: Some(payload.clone()),
    });
    payload
}
