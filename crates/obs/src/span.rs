//! Hierarchical RAII spans over a thread-local stack.
//!
//! A [`SpanGuard`] pushes its name on creation and pops on drop, emitting a
//! `span_start` event when it opens and a `span` event (with the measured
//! wall-clock duration) when it closes. Nesting is tracked per thread, so
//! concurrent pipelines interleave cleanly in the log — each record carries
//! the thread id, the current trace id, and the slash-joined path of the
//! enclosing spans.
//!
//! Two robustness properties the serving layer relies on:
//!
//! * **Panic healing** — a guard records its stack depth at open and
//!   truncates back to it on drop, so spans leaked below it (a panic caught
//!   by `catch_unwind` between open and close, a guard that never dropped)
//!   cannot corrupt the paths of later spans on the thread.
//! * **Worker attribution** — a [`Prefix`] installed via
//!   [`crate::TraceContext::enter`] splices this thread's spans under the
//!   submitting request's path, so kernel work on pool workers shows up in
//!   the owning request's call tree.

use crate::sink::{emit, enabled, metrics_on, span_active, Field, Record};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Path/depth inherited from another thread's span stack (set while a
    /// pool worker drains a batch under an entered trace context).
    static PREFIX: RefCell<Option<Arc<Prefix>>> = const { RefCell::new(None) };
}

/// A frozen snapshot of one thread's span position, spliced under worker
/// threads so their spans attribute to the submitting request.
#[derive(Debug)]
pub(crate) struct Prefix {
    pub(crate) path: String,
    pub(crate) depth: usize,
}

/// Depth of the current thread's span stack (inherited prefix included).
#[must_use]
pub(crate) fn current_depth() -> usize {
    let base = PREFIX.with(|p| p.borrow().as_ref().map_or(0, |p| p.depth));
    base + STACK.with(|s| s.borrow().len())
}

pub(crate) fn current_path() -> String {
    let mut path =
        PREFIX.with(|p| p.borrow().as_ref().map_or_else(String::new, |p| p.path.clone()));
    STACK.with(|s| {
        for name in s.borrow().iter() {
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(name);
        }
    });
    path
}

/// Swaps the inherited prefix, returning the previous one.
pub(crate) fn set_prefix(p: Option<Arc<Prefix>>) -> Option<Arc<Prefix>> {
    PREFIX.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), p))
}

/// Captures the current position as a prefix for another thread.
pub(crate) fn capture_prefix() -> Option<Arc<Prefix>> {
    let depth = current_depth();
    if depth == 0 {
        return None;
    }
    Some(Arc::new(Prefix { path: current_path(), depth }))
}

/// An active span; closing (dropping) it emits the timing record.
/// Inert — a single branch — when no event consumer is active.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, Field)>,
    /// Stack length before this guard pushed; drop truncates back to it.
    depth_at_open: usize,
    /// False for a timing-only guard ([`span_timed`] with metrics on but
    /// no event consumer): it measures but never touches the stack.
    on_stack: bool,
    /// Histogram fed with the duration on close ([`span_timed`]).
    hist: Option<&'static str>,
}

/// Opens a span named `name` on this thread's stack.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Opens a span carrying structured fields (emitted on both the start and
/// end records).
#[must_use]
pub fn span_with(name: &'static str, fields: Vec<(&'static str, Field)>) -> SpanGuard {
    if !span_active() {
        return SpanGuard {
            name,
            start: None,
            fields: Vec::new(),
            depth_at_open: 0,
            on_stack: false,
            hist: None,
        };
    }
    let depth_at_open = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.len() - 1
    });
    // Clock the span before emitting its start record: the emission cost
    // then counts against this span's own time, not the parent's self time
    // (which the profiler derives by subtracting child totals).
    let start = Instant::now();
    if enabled() {
        let path = current_path();
        let depth = current_depth() - 1;
        emit(&Record {
            kind: "span_start",
            name,
            path: Some(&path),
            dur_us: None,
            depth,
            trace: crate::trace::current_trace(),
            fields: &fields,
            payload: None,
        });
    }
    crate::flight::span_open(name);
    SpanGuard { name, start: Some(start), fields, depth_at_open, on_stack: true, hist: None }
}

/// Opens a span that additionally records its duration into the named
/// histogram on close. Unlike [`span`], this stays live whenever metrics
/// are on — even with no event sink it still times the scope and feeds the
/// histogram (without touching the span stack), which is how the
/// `serve.stage.*` latencies keep flowing in sink-off production serving.
#[must_use]
pub fn span_timed(name: &'static str, hist: &'static str) -> SpanGuard {
    if span_active() {
        let mut g = span_with(name, Vec::new());
        g.hist = Some(hist);
        g
    } else if metrics_on() {
        SpanGuard {
            name,
            start: Some(Instant::now()),
            fields: Vec::new(),
            depth_at_open: 0,
            on_stack: false,
            hist: Some(hist),
        }
    } else {
        SpanGuard { name, start: None, fields: Vec::new(), depth_at_open: 0, on_stack: false, hist: None }
    }
}

impl SpanGuard {
    /// Adds a field to the closing record (e.g. a result computed inside
    /// the span). No-op on an inert guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<Field>) {
        if self.start.is_some() && self.on_stack {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(hist) = self.hist {
            #[allow(clippy::cast_precision_loss)]
            crate::metrics::histogram_record(hist, dur_us as f64);
        }
        if !self.on_stack {
            return;
        }
        // Heal any spans leaked below us (a panic caught between our open
        // and close, an inner guard that never dropped) before deriving the
        // close path — later spans on this thread must see a clean stack.
        STACK.with(|s| s.borrow_mut().truncate(self.depth_at_open + 1));
        let path = current_path();
        let depth = current_depth() - 1;
        if enabled() {
            emit(&Record {
                kind: "span",
                name: self.name,
                path: Some(&path),
                dur_us: Some(dur_us),
                depth,
                trace: crate::trace::current_trace(),
                fields: &self.fields,
                payload: None,
            });
        }
        crate::profile::fold(&path, dur_us);
        crate::flight::span_close(self.name, dur_us);
        STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert_eq!(popped, Some(self.name), "span stack corrupted");
        });
    }
}
