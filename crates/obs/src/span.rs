//! Hierarchical RAII spans over a thread-local stack.
//!
//! A [`SpanGuard`] pushes its name on creation and pops on drop, emitting a
//! `span_start` event when it opens and a `span` event (with the measured
//! wall-clock duration) when it closes. Nesting is tracked per thread, so
//! concurrent pipelines interleave cleanly in the log — each record carries
//! the thread id and the slash-joined path of the enclosing spans.

use crate::sink::{emit, enabled, Field, Record};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Depth of the current thread's span stack.
#[must_use]
pub(crate) fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

fn current_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

/// An active span; closing (dropping) it emits the timing record.
/// Inert — a single branch — when the sink is disabled.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, Field)>,
}

/// Opens a span named `name` on this thread's stack.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Opens a span carrying structured fields (emitted on both the start and
/// end records).
#[must_use]
pub fn span_with(name: &'static str, fields: Vec<(&'static str, Field)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None, fields: Vec::new() };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    let depth = current_depth() - 1;
    let path = current_path();
    emit(&Record {
        kind: "span_start",
        name,
        path: Some(&path),
        dur_us: None,
        depth,
        fields: &fields,
        payload: None,
    });
    SpanGuard { name, start: Some(Instant::now()), fields }
}

impl SpanGuard {
    /// Adds a field to the closing record (e.g. a result computed inside
    /// the span). No-op on an inert guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<Field>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let path = current_path();
        let depth = current_depth() - 1;
        emit(&Record {
            kind: "span",
            name: self.name,
            path: Some(&path),
            dur_us: Some(dur_us),
            depth,
            fields: &self.fields,
            payload: None,
        });
        STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert_eq!(popped, Some(self.name), "span stack corrupted");
        });
    }
}
