//! A minimal JSON value with writer and parser.
//!
//! The workspace builds in a hermetic environment with no registry access,
//! so machine-readable output (JSONL event logs, bench result dumps) runs on
//! this module instead of `serde`/`serde_json`. It covers exactly what the
//! observability layer and the bench harness need: building values, compact
//! and pretty serialisation with full string escaping, and a strict parser
//! so tests can round-trip every emitted line.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (stable, diffable dumps).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values serialise as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key: value` (builder style) — only meaningful on `Obj`.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.insert(key, value);
        self
    }

    /// Inserts `key: value` in place.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn insert(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_owned(), value.into())),
            other => panic!("Json::insert on non-object {other:?}"),
        }
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line serialisation.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialisation with 2-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].write(out, indent, depth);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, depth| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth);
                });
            }
        }
    }

    /// Parses a JSON document (must consume the full input).
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == 0.0 && v.is_sign_negative() {
        // The integer fast path below would erase the sign bit; keep it
        // so dump→parse round-trips every finite f64 bitwise.
        out.push_str("-0.0");
    } else if v == v.trunc() && v.abs() < 1e15 {
        #[allow(clippy::cast_possible_truncation)]
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn from(v: $t) -> Json {
                Json::Num(v as f64)
            }
        }
    )*};
}
from_num!(f64, f32, u64, i64, u32, i32, usize);

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our emitter;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let j = Json::obj().with("name", "serve").with("us", 125u64).with("ok", true);
        assert_eq!(j.get("name").and_then(Json::as_str), Some("serve"));
        assert_eq!(j.get("us").and_then(Json::as_f64), Some(125.0));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn negative_zero_round_trips_bitwise() {
        let dumped = Json::Num(-0.0).dump();
        assert_eq!(dumped, "-0.0");
        let back = Json::parse(&dumped).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
        // Positive zero keeps the terse integer form.
        assert_eq!(Json::Num(0.0).dump(), "0");
    }

    #[test]
    fn compact_dump_round_trips() {
        let j = Json::obj()
            .with("ev", "span")
            .with("fields", Json::obj().with("loss", 0.5).with("step", 3u64))
            .with("tags", vec!["a", "b"])
            .with("none", Json::Null);
        let text = j.dump();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn pretty_dump_round_trips_and_indents() {
        let j = Json::obj().with("title", "test").with("rows", vec![1u64, 2]);
        let text = j.pretty();
        assert!(text.contains("\"title\": \"test\""));
        assert!(text.contains("\n  "));
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\r\u{1}π";
        let j = Json::Str(nasty.to_owned());
        assert_eq!(Json::parse(&j.dump()).unwrap(), j);
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::from(3u64).dump(), "3");
        assert_eq!(Json::from(-2i64).dump(), "-2");
        assert_eq!(Json::from(0.5f64).dump(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_documents() {
        let j = Json::parse(r#"{"a": [1, {"b": null}, true], "c": -1.5e2}"#).unwrap();
        assert_eq!(j.get("c").and_then(Json::as_f64), Some(-150.0));
        let arr = j.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }
}
