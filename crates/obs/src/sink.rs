//! Event sinks: where trace records go.
//!
//! The sink is process-global and configured once from the environment on
//! first use:
//!
//! * `MCOND_LOG` — `off`/`0`/unset disables everything (the default no-op
//!   sink); `1`/`on`/`stderr` logs to stderr; `pretty`/`jsonl` are shorthand
//!   for stderr with that format; any other value is a file path (JSONL by
//!   default).
//! * `MCOND_LOG_FORMAT` — `pretty` or `jsonl`, overriding the default
//!   format of the chosen destination.
//!
//! When disabled, every probe in the workspace reduces to one relaxed
//! atomic load and a branch — the zero-cost-when-off contract the hot
//! kernels rely on. Tests use [`testing::capture`] to swap in an in-memory
//! JSONL writer without touching the environment.

use crate::json::Json;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Output format of an active sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable, depth-indented lines on one stream.
    Pretty,
    /// One JSON object per line (the machine-readable schema).
    Jsonl,
}

/// A structured field value attached to spans and points.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// Unsigned integer (counts, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (losses, rates).
    F64(f64),
    /// Text.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl Field {
    fn to_json(&self) -> Json {
        match self {
            Field::U64(v) => Json::from(*v),
            Field::I64(v) => Json::from(*v),
            Field::F64(v) => Json::from(*v),
            Field::Str(s) => Json::from(s.as_str()),
            Field::Bool(b) => Json::from(*b),
        }
    }

    fn pretty(&self) -> String {
        match self {
            Field::U64(v) => v.to_string(),
            Field::I64(v) => v.to_string(),
            Field::F64(v) => format!("{v:.6}"),
            Field::Str(s) => s.clone(),
            Field::Bool(b) => b.to_string(),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for Field {
            #[allow(clippy::cast_lossless)]
            fn from(v: $t) -> Field {
                Field::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(u64 => U64 as u64, usize => U64 as u64, u32 => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64,
            f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_owned())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// One trace record, built by the span/point/metrics front-ends.
pub(crate) struct Record<'a> {
    /// Event kind: `span_start`, `span`, `point`, `flight`, or `metrics`.
    pub kind: &'static str,
    /// Event name (e.g. `condense.outer`).
    pub name: &'a str,
    /// Slash-joined span path including `name` (span events only).
    pub path: Option<&'a str>,
    /// Wall-clock duration in microseconds (`span` events only).
    pub dur_us: Option<u64>,
    /// Span-stack depth at emission (pretty indentation).
    pub depth: usize,
    /// Request-scoped trace id (0 = outside any trace).
    pub trace: u64,
    /// Structured fields.
    pub fields: &'a [(&'a str, Field)],
    /// Extra payload (metrics snapshots, flight dumps).
    pub payload: Option<Json>,
}

struct SinkState {
    format: LogFormat,
    writer: Box<dyn Write + Send>,
}

/// Activation bits, all read through one relaxed load of [`ACTIVE`]: every
/// probe in the workspace stays a single atomic load + branch when the
/// whole substrate is off.
pub(crate) const EVENTS: u32 = 1 << 0;
pub(crate) const METRICS_FORCED: u32 = 1 << 1;
pub(crate) const PROFILE: u32 = 1 << 2;
pub(crate) const FLIGHT: u32 = 1 << 3;

static ACTIVE: AtomicU32 = AtomicU32::new(0);
static INIT_DONE: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn sink() -> &'static Mutex<Option<SinkState>> {
    static SINK: OnceLock<Mutex<Option<SinkState>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn lock_sink() -> MutexGuard<'static, Option<SinkState>> {
    sink().lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable small integer id (assigned on first use).
#[must_use]
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

fn init_from_env() {
    if INIT_DONE.swap(true, Ordering::AcqRel) {
        return;
    }
    let spec = std::env::var("MCOND_LOG").unwrap_or_default();
    let (target, default_format) = match spec.as_str() {
        "" | "0" | "off" | "none" => return,
        "1" | "on" | "stderr" => (None, LogFormat::Pretty),
        "pretty" => (None, LogFormat::Pretty),
        "jsonl" | "json" => (None, LogFormat::Jsonl),
        path => (Some(path.to_owned()), LogFormat::Jsonl),
    };
    let format = match std::env::var("MCOND_LOG_FORMAT").as_deref() {
        Ok("pretty") => LogFormat::Pretty,
        Ok("jsonl" | "json") => LogFormat::Jsonl,
        _ => default_format,
    };
    let writer: Box<dyn Write + Send> = match target {
        None => Box::new(std::io::stderr()),
        Some(path) => match std::fs::File::create(&path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("mcond-obs: cannot open MCOND_LOG={path}: {e}; logging to stderr");
                Box::new(std::io::stderr())
            }
        },
    };
    *lock_sink() = Some(SinkState { format, writer });
    start_instant();
    flag_set(EVENTS, true);
}

/// The current activation bitmask (reads the environment on first use;
/// later calls are one relaxed atomic load).
#[inline]
pub(crate) fn flags() -> u32 {
    if !INIT_DONE.load(Ordering::Acquire) {
        init_from_env();
    }
    ACTIVE.load(Ordering::Relaxed)
}

/// Sets or clears one activation bit.
pub(crate) fn flag_set(bit: u32, on: bool) {
    if on {
        ACTIVE.fetch_or(bit, Ordering::Release);
    } else {
        ACTIVE.fetch_and(!bit, Ordering::Release);
    }
}

/// Whether an event sink is active (env-configured or test-installed).
///
/// The first call reads the environment; later calls are one atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    flags() & EVENTS != 0
}

/// Whether spans must track the thread-local stack and measure time: true
/// when any consumer of span events is active — the sink, the in-process
/// profiler ([`crate::profile`]), or the flight recorder
/// ([`crate::flight`]).
#[inline]
#[must_use]
pub fn span_active() -> bool {
    flags() & (EVENTS | PROFILE | FLIGHT) != 0
}

/// Whether metric recording (counters/gauges/histograms) is active: true
/// when events are on or after [`enable_metrics`].
#[inline]
#[must_use]
pub fn metrics_on() -> bool {
    flags() & (EVENTS | METRICS_FORCED) != 0
}

/// Turns on metric aggregation without any event sink — used by the bench
/// harness to collect kernel counters into reports while keeping event
/// logging off.
pub fn enable_metrics() {
    flag_set(METRICS_FORCED, true);
}

/// Emits a free-standing point event (a named measurement with fields).
/// No-op when the sink is disabled.
pub fn point(name: &str, fields: &[(&str, Field)]) {
    if !enabled() {
        return;
    }
    emit(&Record {
        kind: "point",
        name,
        path: None,
        dur_us: None,
        depth: crate::span::current_depth(),
        trace: crate::trace::current_trace(),
        fields,
        payload: None,
    });
}

pub(crate) fn emit(record: &Record<'_>) {
    let mut guard = lock_sink();
    let Some(state) = guard.as_mut() else {
        return;
    };
    let line = match state.format {
        LogFormat::Jsonl => jsonl_line(record),
        LogFormat::Pretty => pretty_line(record),
    };
    let _ = writeln!(state.writer, "{line}");
    let _ = state.writer.flush();
}

fn jsonl_line(record: &Record<'_>) -> String {
    let mut obj = Json::obj()
        .with("ev", record.kind)
        .with("name", record.name)
        .with("t_us", elapsed_us())
        .with("seq", SEQ.fetch_add(1, Ordering::Relaxed))
        .with("tid", thread_id());
    if let Some(path) = record.path {
        obj.insert("path", path);
    }
    if let Some(us) = record.dur_us {
        obj.insert("us", us);
    }
    if record.trace != 0 {
        obj.insert("trace", record.trace);
    }
    if !record.fields.is_empty() {
        let mut fields = Json::obj();
        for (k, v) in record.fields {
            fields.insert(k, v.to_json());
        }
        obj.insert("fields", fields);
    }
    if let Some(payload) = &record.payload {
        // Flight dumps carry an event array; metrics records a snapshot.
        let key = if record.kind == "flight" { "events" } else { "metrics" };
        obj.insert(key, payload.clone());
    }
    obj.dump()
}

fn pretty_line(record: &Record<'_>) -> String {
    let indent = "  ".repeat(record.depth);
    let mut line = format!(
        "[{:>10.3}ms t{}] {indent}{} {}",
        elapsed_us() as f64 / 1000.0,
        thread_id(),
        match record.kind {
            "span_start" => ">",
            "span" => "<",
            "metrics" => "#",
            _ => "·",
        },
        record.path.unwrap_or(record.name),
    );
    if let Some(us) = record.dur_us {
        line.push_str(&format!(" ({:.3}ms)", us as f64 / 1000.0));
    }
    if record.trace != 0 {
        line.push_str(&format!(" trace={}", record.trace));
    }
    for (k, v) in record.fields {
        line.push_str(&format!(" {k}={}", v.pretty()));
    }
    if let Some(payload) = &record.payload {
        line.push_str(&format!(" {}", payload.dump()));
    }
    line
}

pub(crate) fn elapsed_us() -> u64 {
    u64::try_from(start_instant().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Test support: capture events in memory and inspect them as parsed JSONL.
pub mod testing {
    use super::{
        flag_set, lock_sink, AtomicBool, ACTIVE, EVENTS, INIT_DONE, LogFormat, Mutex, MutexGuard,
        Ordering, PoisonError, SinkState, Write,
    };
    use crate::json::Json;
    use std::sync::{Arc, OnceLock};

    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner).extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Exclusive capture session: installs a JSONL sink writing to memory.
    /// Concurrent captures serialise on a global mutex; dropping the handle
    /// restores the previous sink state.
    pub struct Capture {
        buf: Arc<Mutex<Vec<u8>>>,
        was_enabled: bool,
        _guard: MutexGuard<'static, ()>,
    }

    fn capture_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// Begins capturing all events as JSONL into an in-memory buffer.
    #[must_use]
    pub fn capture() -> Capture {
        let guard = capture_lock().lock().unwrap_or_else(PoisonError::into_inner);
        // Skip env config entirely: the capture sink takes over.
        INIT_DONE.store(true, Ordering::Release);
        let was_enabled = ACTIVE.load(Ordering::Relaxed) & EVENTS != 0;
        let buf = Arc::new(Mutex::new(Vec::new()));
        *lock_sink() =
            Some(SinkState { format: LogFormat::Jsonl, writer: Box::new(SharedBuf(Arc::clone(&buf))) });
        flag_set(EVENTS, true);
        Capture { buf, was_enabled, _guard: guard }
    }

    impl Capture {
        /// The raw captured text so far.
        #[must_use]
        pub fn text(&self) -> String {
            let bytes = self.buf.lock().unwrap_or_else(PoisonError::into_inner).clone();
            String::from_utf8_lossy(&bytes).into_owned()
        }

        /// Every captured line parsed as JSON.
        ///
        /// # Panics
        /// Panics when a captured line is not valid JSON — the schema
        /// guarantee the golden tests assert.
        #[must_use]
        pub fn parsed_lines(&self) -> Vec<Json> {
            self.text()
                .lines()
                .filter(|l| !l.is_empty())
                .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
                .collect()
        }

        /// Discards everything captured so far.
        pub fn clear(&self) {
            self.buf.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }

    impl Drop for Capture {
        fn drop(&mut self) {
            flag_set(EVENTS, self.was_enabled);
            *lock_sink() = None;
        }
    }

    /// Compile-time check that the sink state stays Send (the writer moves
    /// across the global mutex).
    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<SinkState>();
        assert_send::<AtomicBool>();
    };
}
