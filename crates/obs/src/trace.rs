//! Request-scoped trace ids and cross-thread trace context.
//!
//! [`begin_trace`] stamps the current thread with a fresh process-unique
//! trace id; every span/point record emitted while the guard lives carries
//! it (the `"trace"` key in JSONL, `trace=N` in pretty output). The serving
//! layer assigns one id per request, so a JSONL log slices cleanly into
//! per-request timelines.
//!
//! [`capture_context`] freezes the current id *and* span position into a
//! [`TraceContext`]; a pool worker that [`TraceContext::enter`]s it has its
//! spans attributed to the owning request's call tree (path prefix + trace
//! id) instead of an orphan root path. The guard restores the worker's own
//! state on drop, so contexts nest and interleave safely.
//!
//! Everything here is inert — id 0, no thread-local writes beyond one read
//! — when no event consumer (sink, profiler, flight recorder) is active.

use crate::span::{self, Prefix};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The trace id stamped on records emitted by this thread right now
/// (0 = outside any trace).
#[must_use]
pub fn current_trace() -> u64 {
    CURRENT.with(Cell::get)
}

/// RAII scope of one trace id; restores the previous id on drop.
pub struct TraceGuard {
    id: u64,
    prev: u64,
    installed: bool,
}

impl TraceGuard {
    /// The id carried by records inside this scope (0 on an inert guard).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Starts a fresh trace scope with a new process-unique id (monotonically
/// increasing from 1). Inert when no event consumer is active.
#[must_use]
pub fn begin_trace() -> TraceGuard {
    if !crate::sink::span_active() {
        return TraceGuard { id: 0, prev: 0, installed: false };
    }
    let id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.replace(id));
    TraceGuard { id, prev, installed: true }
}

/// Like [`begin_trace`], but keeps an already-active trace: when the thread
/// is inside a trace the guard is inert and reports the enclosing id.
/// `InductiveServer::try_serve` calls this so direct calls get their own
/// trace while `try_serve_many` keeps the per-request ids it assigned.
#[must_use]
pub fn ensure_trace() -> TraceGuard {
    let current = current_trace();
    if current != 0 {
        return TraceGuard { id: current, prev: current, installed: false };
    }
    begin_trace()
}

/// A frozen (trace id, span position) pair — cheap to clone, `Send`, the
/// unit of cross-thread trace propagation. The pool captures one per batch
/// submission and enters it on every worker that drains the batch.
#[derive(Clone, Default)]
pub struct TraceContext {
    trace: u64,
    prefix: Option<Arc<Prefix>>,
}

/// Captures the calling thread's trace id and span path for propagation
/// into pool workers. Empty (one atomic load) when tracing is off.
#[must_use]
pub fn capture_context() -> TraceContext {
    if !crate::sink::span_active() {
        return TraceContext::default();
    }
    TraceContext { trace: current_trace(), prefix: span::capture_prefix() }
}

impl TraceContext {
    /// Installs this context on the current thread until the guard drops:
    /// spans opened meanwhile extend the captured path and carry the
    /// captured trace id.
    #[must_use]
    pub fn enter(&self) -> ContextGuard {
        let prev_trace = CURRENT.with(|c| c.replace(self.trace));
        let prev_prefix = span::set_prefix(self.prefix.clone());
        ContextGuard { prev_trace, prev_prefix }
    }
}

/// Restores the thread's own trace id and span prefix on drop.
pub struct ContextGuard {
    prev_trace: u64,
    prev_prefix: Option<Arc<Prefix>>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev_trace));
        let _ = span::set_prefix(self.prev_prefix.take());
    }
}
