#!/bin/bash
# Regenerates every table and figure of the paper at the given scale.
set -u
SCALE="${1:-small}"
REPEATS="${2:-3}"
OUT="results"
mkdir -p "$OUT"
# Build once so BIN_DIR is fresh (skip with PREBUILT=1 when binaries are known-good).
if [ -z "${PREBUILT:-}" ]; then cargo build --release -p mcond-bench --bins; fi
# Persistence smoke: condense → checkpoint → restore → serve must stay
# bitwise-identical before any multi-phase run that saves artifacts in one
# phase and reloads them in the next (skip with SKIP_CHECKPOINT=1).
if [ -z "${SKIP_CHECKPOINT:-}" ]; then
  echo "=== running checkpointing smoke ==="
  cargo run --release --example checkpointing | tee "$OUT/checkpointing.txt"
fi
for exp in table1_datasets table2_accuracy fig3_cost_graph_batch fig4_cost_node_batch \
           table3_propagation table4_architectures table5_ablation \
           fig5_mapping_vis fig6_sparsification fig7_sensitivity ablation_design \
           calibrate_datasets; do
  echo "=== running $exp (scale=$SCALE) ==="
  "${BIN_DIR:-target/release}/$exp" \
    --scale "$SCALE" --repeats "$REPEATS" --json "$OUT/$exp.json" \
    | tee "$OUT/$exp.txt"
done
