//! Versioned checkpointing: condense once, persist the serve-ready bundle
//! (`S = {A', X', Y'}` + mapping `M` + trained weights) as one CRC-checked
//! `MCST` file, then boot an [`InductiveServer`] from the restored bundle —
//! without the original graph — and verify its logits are bitwise
//! identical to the in-memory pipeline. Doubles as the CI smoke test for
//! the persistence layer.
//!
//! ```sh
//! cargo run --release --example checkpointing
//! ```

use mcond::core::{Checkpoint, InductiveServer};
use mcond::prelude::*;

fn main() {
    // --- Offline phase: condense and train. --------------------------------
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(
        &data,
        &McondConfig { ratio: 0.02, outer_loops: 2, relay_steps: 5, ..Default::default() },
    );
    let ops = GraphOps::from_adj(&condensed.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        condensed.synthetic.feature_dim(),
        64,
        condensed.synthetic.num_classes,
        0,
    );
    train(
        &mut model,
        &ops,
        &condensed.synthetic.features,
        &condensed.synthetic.labels,
        &TrainConfig { epochs: 100, ..TrainConfig::default() },
        None,
    );

    // --- Persist the serve-ready bundle atomically. ------------------------
    let path = std::env::temp_dir().join("mcond_example_checkpoint.mcst");
    let ckpt = condensed.checkpoint(&model);
    let bytes = ckpt.save(&path).expect("save checkpoint");
    println!("checkpoint: {bytes} bytes at {}", path.display());

    // --- Deployment phase: restore and serve (no original graph). ----------
    let restored = Checkpoint::load(&path).expect("load checkpoint");
    let server = InductiveServer::from_checkpoint(&restored);
    let live = InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);

    let batches = data.test_batches(100, false);
    let mut hits = 0.0;
    let mut total = 0usize;
    for batch in &batches {
        let logits = server.serve(batch);
        assert!(
            logits.bit_eq(&live.serve(batch)),
            "restored server drifted from the in-memory pipeline"
        );
        hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    println!(
        "restored server: {:.2}% accuracy over {} inductive nodes — bitwise \
         identical to the in-memory pipeline",
        100.0 * hits / total as f64,
        total
    );

    // --- Integrity: corruption is a typed error, never a panic. ------------
    let mut image = std::fs::read(&path).expect("read image");
    let mid = image.len() / 2;
    image[mid] ^= 0x40;
    match Checkpoint::from_bytes(image) {
        Err(e) => println!("flipped one bit mid-file: load rejected with `{e}`"),
        Ok(_) => unreachable!("corrupted checkpoint must not load"),
    }
    std::fs::remove_file(&path).ok();
}
