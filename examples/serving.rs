//! Deployment serving: persist a condensation artifact, reload it, and
//! serve inductive batches with the lazy [`InductiveServer`] — comparing
//! its per-batch cost against the materialise-per-batch path — then put
//! the same artifact behind the `mcond-serve` HTTP front end and round-
//! trip a batch over a real localhost socket.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Set `MCOND_SERVE_HOLD_SECS=30` to keep the HTTP server alive after
//! the demo so you can poke it with curl (the example prints a ready-to-
//! paste command).

use mcond::core::{load_condensed, save_condensed, Checkpoint, InductiveServer};
use mcond::prelude::*;
use mcond::serve::{boot_slot, encode_batch, spawn, Client};
use std::time::{Duration, Instant};

fn main() {
    // Condense once (the "offline" phase).
    let data = load_dataset("reddit", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(
        &data,
        &McondConfig { ratio: 0.015, outer_loops: 3, relay_steps: 10, ..Default::default() },
    );

    // Ship the artifact: synthetic graph + mapping, no original graph.
    let dir = std::env::temp_dir().join("mcond_serving_artifact");
    save_condensed(&condensed, &dir).expect("save artifact");
    let artifact = load_condensed(&dir).expect("load artifact");
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "artifact: {} synthetic nodes, {:.3} MB total",
        artifact.synthetic.num_nodes(),
        artifact.storage_bytes() as f64 / 1e6
    );

    // Train the deployment model on the synthetic graph.
    let ops = GraphOps::from_adj(&artifact.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        artifact.synthetic.feature_dim(),
        64,
        artifact.synthetic.num_classes,
        0,
    );
    train(
        &mut model,
        &ops,
        &artifact.synthetic.features,
        &artifact.synthetic.labels,
        &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
        None,
    );

    // Serve batches two ways and compare.
    let batches = data.test_batches(100, true);
    let server = InductiveServer::on_synthetic(&artifact.synthetic, &artifact.mapping, &model);
    let target = InferenceTarget::Synthetic {
        graph: &artifact.synthetic,
        mapping: &artifact.mapping,
    };

    let start = Instant::now();
    let mut hits_lazy = 0.0;
    let mut total = 0usize;
    for batch in &batches {
        let logits = server.serve(batch);
        hits_lazy += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    let lazy_time = start.elapsed();

    let start = Instant::now();
    let mut hits_eager = 0.0;
    for batch in &batches {
        let logits = infer_inductive(&model, &target, batch);
        hits_eager += accuracy(&logits, &batch.labels) * batch.len() as f64;
    }
    let eager_time = start.elapsed();

    println!(
        "lazy server:          {:.2}% accuracy, {:.2} ms for {} batches",
        100.0 * hits_lazy / total as f64,
        1000.0 * lazy_time.as_secs_f64(),
        batches.len()
    );
    println!(
        "materialised path:    {:.2}% accuracy, {:.2} ms",
        100.0 * hits_eager / total as f64,
        1000.0 * eager_time.as_secs_f64()
    );
    println!(
        "serving speedup: {:.2}x (identical logits by construction)",
        eager_time.as_secs_f64() / lazy_time.as_secs_f64().max(1e-12)
    );

    // ── Network serving ────────────────────────────────────────────────
    // Bundle the deployable triple (S, M, weights) as one checkpoint,
    // boot an HTTP front end from the file alone, and verify a wire
    // round trip is bitwise identical to the library call.
    let ckpt_path = std::env::temp_dir().join("mcond_serving_demo.mckpt");
    let bytes =
        Checkpoint::new(artifact.synthetic.clone(), artifact.mapping.clone(), model.clone())
            .expect("artifact sections agree")
            .save(&ckpt_path)
            .expect("write checkpoint");
    println!("\ncheckpoint: {} ({bytes} bytes)", ckpt_path.display());

    let slot = boot_slot(&ckpt_path).expect("boot from checkpoint");
    let handle = spawn(slot.clone(), ServeConfig::default()).expect("bind localhost");
    println!(
        "HTTP front end listening on http://{} (epoch {})",
        handle.addr(),
        handle.epoch()
    );

    let demo = &batches[0];
    let direct = slot.load().server().try_serve(demo).expect("library serve");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).expect("connect");
    let (trace, wire) = client.post_batch(demo).expect("HTTP serve");
    assert!(
        wire.bit_eq(&direct),
        "HTTP logits must be bitwise identical to the library call"
    );
    println!(
        "POST /v1/serve: {} logits rows over the socket, bitwise equal to try_serve \
         (trace id {trace})",
        wire.rows()
    );
    let health = client.request("GET", "/healthz", b"").expect("healthz");
    println!("GET /healthz: {} {}", health.status, health.text());

    // ── Zero-downtime hot reload ───────────────────────────────────────
    // Train a v2 of the model, save it as a second checkpoint, and swap
    // it in under the live server: validated load + canary + one pointer
    // exchange. In-flight requests finish on their epoch; every response
    // names its epoch in `x-mcond-epoch`.
    let mut model_v2 = model;
    train(
        &mut model_v2,
        &ops,
        &artifact.synthetic.features,
        &artifact.synthetic.labels,
        &TrainConfig { epochs: 50, lr: 0.03, ..TrainConfig::default() },
        None,
    );
    let v2_path = std::env::temp_dir().join("mcond_serving_demo_v2.mckpt");
    Checkpoint::new(artifact.synthetic.clone(), artifact.mapping.clone(), model_v2)
        .expect("v2 sections agree")
        .save(&v2_path)
        .expect("write v2 checkpoint");
    let before = handle.epoch();
    let outcome = handle.reload(&v2_path).expect("hot reload");
    println!(
        "hot reload: epoch {before} -> {} (checkpoint {}), zero requests dropped",
        outcome.epoch, outcome.checkpoint_id
    );
    let reply = client.post_batch_tagged(demo).expect("serve on the new epoch");
    assert_eq!(
        reply.epoch,
        Some(outcome.epoch),
        "responses after the swap must carry the new epoch"
    );
    println!(
        "POST /v1/serve after the swap: x-mcond-epoch {} on the same keep-alive connection",
        outcome.epoch
    );

    // A request body for manual exploration.
    let body_path = std::env::temp_dir().join("mcond_serving_demo_batch.json");
    std::fs::write(&body_path, encode_batch(demo)).expect("write demo batch");
    println!(
        "\ntry it yourself:\n  curl -s -X POST http://{addr}/v1/serve --data-binary @{body}\n  \
         curl -s http://{addr}/metrics\n  curl -s http://{addr}/healthz\n  \
         curl -s -X POST http://{addr}/v1/admin/reload -d '{{\"path\": \"{v2}\"}}'",
        addr = handle.addr(),
        body = body_path.display(),
        v2 = v2_path.display()
    );
    if let Ok(hold) = std::env::var("MCOND_SERVE_HOLD_SECS") {
        let secs: u64 = hold.parse().unwrap_or(30);
        println!("holding the server for {secs}s (MCOND_SERVE_HOLD_SECS)...");
        std::thread::sleep(Duration::from_secs(secs));
    }
    handle.shutdown();
    std::fs::remove_file(&ckpt_path).ok();
    std::fs::remove_file(&v2_path).ok();
}
