//! Deployment serving: persist a condensation artifact, reload it, and
//! serve inductive batches with the lazy [`InductiveServer`] — comparing
//! its per-batch cost against the materialise-per-batch path.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use mcond::core::{load_condensed, save_condensed, InductiveServer};
use mcond::prelude::*;
use std::time::Instant;

fn main() {
    // Condense once (the "offline" phase).
    let data = load_dataset("reddit", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(
        &data,
        &McondConfig { ratio: 0.015, outer_loops: 3, relay_steps: 10, ..Default::default() },
    );

    // Ship the artifact: synthetic graph + mapping, no original graph.
    let dir = std::env::temp_dir().join("mcond_serving_artifact");
    save_condensed(&condensed, &dir).expect("save artifact");
    let artifact = load_condensed(&dir).expect("load artifact");
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "artifact: {} synthetic nodes, {:.3} MB total",
        artifact.synthetic.num_nodes(),
        artifact.storage_bytes() as f64 / 1e6
    );

    // Train the deployment model on the synthetic graph.
    let ops = GraphOps::from_adj(&artifact.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        artifact.synthetic.feature_dim(),
        64,
        artifact.synthetic.num_classes,
        0,
    );
    train(
        &mut model,
        &ops,
        &artifact.synthetic.features,
        &artifact.synthetic.labels,
        &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
        None,
    );

    // Serve batches two ways and compare.
    let batches = data.test_batches(100, true);
    let server = InductiveServer::on_synthetic(&artifact.synthetic, &artifact.mapping, &model);
    let target = InferenceTarget::Synthetic {
        graph: &artifact.synthetic,
        mapping: &artifact.mapping,
    };

    let start = Instant::now();
    let mut hits_lazy = 0.0;
    let mut total = 0usize;
    for batch in &batches {
        let logits = server.serve(batch);
        hits_lazy += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    let lazy_time = start.elapsed();

    let start = Instant::now();
    let mut hits_eager = 0.0;
    for batch in &batches {
        let logits = infer_inductive(&model, &target, batch);
        hits_eager += accuracy(&logits, &batch.labels) * batch.len() as f64;
    }
    let eager_time = start.elapsed();

    println!(
        "lazy server:          {:.2}% accuracy, {:.2} ms for {} batches",
        100.0 * hits_lazy / total as f64,
        1000.0 * lazy_time.as_secs_f64(),
        batches.len()
    );
    println!(
        "materialised path:    {:.2}% accuracy, {:.2} ms",
        100.0 * hits_eager / total as f64,
        1000.0 * eager_time.as_secs_f64()
    );
    println!(
        "serving speedup: {:.2}x (identical logits by construction)",
        eager_time.as_secs_f64() / lazy_time.as_secs_f64().max(1e-12)
    );
}
