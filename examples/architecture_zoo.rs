//! Generalisability across GNN architectures (paper Table IV): the same
//! synthetic graph and mapping serve SGC, GCN, GraphSAGE, APPNP, and
//! ChebNet — each trained on S and evaluated inductively on S through M.
//!
//! ```sh
//! cargo run --release --example architecture_zoo
//! ```

use mcond::prelude::*;

fn main() {
    let data = load_dataset("flickr", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(&data, &McondConfig { ratio: 0.05, ..Default::default() });
    let batches = data.test_batches(1000, false);
    let target = InferenceTarget::Synthetic {
        graph: &condensed.synthetic,
        mapping: &condensed.mapping,
    };

    println!("architecture    train-acc   inductive-acc (node batch)");
    for kind in GnnKind::ALL {
        let ops = GraphOps::from_adj(&condensed.synthetic.adj);
        let mut model = GnnModel::new(
            kind,
            condensed.synthetic.feature_dim(),
            64,
            condensed.synthetic.num_classes,
            0,
        );
        let report = train(
            &mut model,
            &ops,
            &condensed.synthetic.features,
            &condensed.synthetic.labels,
            &TrainConfig { epochs: 200, lr: 0.03, ..TrainConfig::default() },
            None,
        );
        let mut hits = 0.0;
        let mut total = 0usize;
        for batch in &batches {
            let logits = infer_inductive(&model, &target, batch);
            hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
            total += batch.len();
        }
        println!(
            "{:>12}    {:>6.2}%     {:>6.2}%",
            kind.name(),
            100.0 * report.train_accuracy,
            100.0 * hits / total as f64
        );
    }
}
