//! Bring your own graph: generate (or load) a custom attributed graph,
//! persist it in the on-disk format, build an inductive split, and condense
//! it. Real datasets converted to the `MCG1` format drop into the same
//! pipeline.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use mcond::graph::{load_graph, save_graph};
use mcond::prelude::*;

fn main() {
    // 1. A custom graph from the block-model generator (replace this with
    //    your own Graph built from Coo + DMat + labels).
    let graph = generate_sbm(&SbmConfig {
        nodes: 1_500,
        edges: 6_000,
        feature_dim: 48,
        num_classes: 5,
        homophily: 0.8,
        center_scale: 0.3,
        feature_noise: 1.0,
        ..SbmConfig::default()
    });
    println!(
        "custom graph: {} nodes, {} edges, homophily {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.edge_homophily()
    );

    // 2. Round-trip through the on-disk format.
    let path = std::env::temp_dir().join("mcond_custom.mcg");
    save_graph(&graph, &path).expect("save");
    let graph = load_graph(&path).expect("load");
    std::fs::remove_file(&path).ok();
    println!("round-tripped through the MCG1 format");

    // 3. Build an inductive split: 80% train (the original graph), 10%
    //    validation (support nodes), 10% test (inductive).
    let n = graph.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    MatRng::seed_from(7).shuffle(&mut order);
    let train_idx = order[..n * 8 / 10].to_vec();
    let val = order[n * 8 / 10..n * 9 / 10].to_vec();
    let test = order[n * 9 / 10..].to_vec();
    let data = InductiveDataset::new(graph, train_idx, val, test);

    // 4. Condense and evaluate.
    let condensed = condense(&data, &McondConfig { ratio: 0.02, ..Default::default() });
    let original = data.original_graph();
    let model = {
        let ops = GraphOps::from_adj(&original.adj);
        let mut m = GnnModel::new(GnnKind::Sgc, original.feature_dim(), 64, original.num_classes, 0);
        train(
            &mut m,
            &ops,
            &original.features,
            &original.labels,
            &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
            None,
        );
        m
    };
    let target = InferenceTarget::Synthetic {
        graph: &condensed.synthetic,
        mapping: &condensed.mapping,
    };
    let mut hits = 0.0;
    let mut total = 0usize;
    for batch in data.test_batches(500, false) {
        let logits = infer_inductive(&model, &target, &batch);
        hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    println!(
        "condensed to {} nodes; inductive accuracy on S: {:.2}%",
        condensed.synthetic.num_nodes(),
        100.0 * hits / total as f64
    );
}
