//! The headline experiment in miniature: how much faster and smaller is
//! inductive inference on the condensed graph versus the original graph?
//! (Paper: up to 121.5x speedup and 55.9x memory reduction on Reddit.)
//!
//! The second half layers the **serving fast path** on top: the same
//! condensed graph served through [`InductiveServer`] in each
//! [`ServeMode`] — the legacy vstack-and-slice reference (`Extended`),
//! the split-operator zero-copy path (`Exact`, the default; verified
//! bitwise against the reference here), and the approximate frozen-base
//! cache (`FrozenBase`).
//!
//! ```sh
//! cargo run --release --example inference_acceleration
//! ```

use mcond::prelude::*;
use std::time::Instant;

fn main() {
    // Reddit-like: the largest, densest bundled dataset.
    let data = load_dataset("reddit", Scale::Small, 0).expect("bundled dataset");
    let original = data.original_graph();
    let condensed = condense(
        &data,
        &McondConfig { ratio: 0.01, outer_loops: 3, relay_steps: 10, ..Default::default() },
    );

    // One model serves both targets: train on the original graph (O->·).
    let ops = GraphOps::from_adj(&original.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        original.feature_dim(),
        64,
        original.num_classes,
        0,
    );
    train(
        &mut model,
        &ops,
        &original.features,
        &original.labels,
        &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
        None,
    );

    let meter = CostMeter::default();
    let batches = data.test_batches(1000, true);
    let targets = [
        ("original graph (Whole)", InferenceTarget::Original(&original)),
        (
            "synthetic graph (MCond)",
            InferenceTarget::Synthetic {
                graph: &condensed.synthetic,
                mapping: &condensed.mapping,
            },
        ),
    ];

    let mut costs = Vec::new();
    for (label, target) in &targets {
        let mut seconds = 0.0;
        let mut memory = 0usize;
        let mut hits = 0.0;
        let mut total = 0usize;
        for batch in &batches {
            let (adj, x) = target.attach(batch);
            let n_base = target.base_nodes();
            let (logits, cost) = meter.measure(&adj, x.rows(), x.cols(), || {
                let ops = GraphOps::from_adj(&adj);
                let full = model.predict(&ops, &x);
                full.slice_rows(n_base, full.rows())
            });
            hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
            total += batch.len();
            seconds += cost.seconds;
            memory = memory.max(cost.memory_bytes);
        }
        println!(
            "{label:>24}: acc {:.2}%  time {:.2} ms/batch  memory {:.2} MB",
            100.0 * hits / total as f64,
            1000.0 * seconds / batches.len() as f64,
            memory as f64 / 1e6
        );
        costs.push((seconds, memory));
    }

    println!(
        "\nMCond vs Whole: {:.1}x inference speedup, {:.1}x memory reduction",
        costs[0].0 / costs[1].0.max(1e-12),
        costs[0].1 as f64 / costs[1].1.max(1) as f64
    );

    // --- Serving fast path on the condensed graph -----------------------
    // The servers above re-materialised the extended graph per batch; the
    // InductiveServer streams through the shared base instead, and the
    // split-operator fast path (the default) never copies base features.
    println!("\nserving fast path (same condensed graph, {} batches):", batches.len());
    let modes = [
        ("Extended (reference)", ServeMode::Extended),
        ("Exact (fast path)", ServeMode::Exact),
        ("FrozenBase (approx.)", ServeMode::FrozenBase),
    ];
    let mut reference: Option<DMat> = None;
    for (label, mode) in modes {
        let server =
            InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model)
                .with_serve_mode(mode);
        let start = Instant::now();
        let first = server.serve(&batches[0]);
        for batch in &batches[1..] {
            let _ = server.serve(batch);
        }
        let elapsed = start.elapsed().as_secs_f64();
        match (&reference, mode) {
            (None, _) => reference = Some(first),
            (Some(r), ServeMode::Exact) => assert_eq!(
                r.as_slice(),
                first.as_slice(),
                "exact fast path must be bitwise identical to the reference"
            ),
            _ => {}
        }
        let snap = server.metrics_snapshot();
        let gauge = |name: &str| {
            snap.gauges.iter().find(|(k, _)| k == name).map_or(0.0, |(_, v)| *v)
        };
        println!(
            "{label:>22}: {:.2} ms/batch  base bytes avoided {:.2} MB",
            1000.0 * elapsed / batches.len() as f64,
            gauge("serve.bytes_saved") / 1e6
        );
    }
    println!("exact fast path verified bitwise against the extended reference");
}
