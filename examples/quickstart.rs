//! Quickstart: condense a graph, train on the small synthetic graph, and
//! run inductive inference directly on it through the learned mapping.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mcond::prelude::*;

fn main() {
    // 1. Load an inductive dataset. The training subgraph is the "original
    //    graph" T handed to condensation; validation/test nodes are unseen.
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let original = data.original_graph();
    println!(
        "original graph T: {} nodes, {} edges, {} classes",
        original.num_nodes(),
        original.num_edges(),
        original.num_classes
    );

    // 2. Condense: learn S = {A', X', Y'} and the mapping M (Algorithm 1).
    let cfg = McondConfig { ratio: 0.02, ..McondConfig::default() };
    let condensed = condense(&data, &cfg);
    println!(
        "synthetic graph S: {} nodes ({}x smaller), mapping nnz = {}",
        condensed.synthetic.num_nodes(),
        original.num_nodes() / condensed.synthetic.num_nodes(),
        condensed.mapping.nnz()
    );

    // 3. Train SGC on the synthetic graph only.
    let ops = GraphOps::from_adj(&condensed.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        condensed.synthetic.feature_dim(),
        64,
        condensed.synthetic.num_classes,
        0,
    );
    let report = train(
        &mut model,
        &ops,
        &condensed.synthetic.features,
        &condensed.synthetic.labels,
        &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
        None,
    );
    println!("trained on S: final loss {:.4}", report.losses.last().unwrap());

    // 4. Inductive inference: attach test nodes to S through M (Eq. 11)
    //    and, for comparison, to the original graph (Eq. 3).
    let synthetic_target = InferenceTarget::Synthetic {
        graph: &condensed.synthetic,
        mapping: &condensed.mapping,
    };
    let original_target = InferenceTarget::Original(&original);
    let mut hits_s = 0.0;
    let mut hits_o = 0.0;
    let mut total = 0usize;
    for batch in data.test_batches(1000, false) {
        let logits_s = infer_inductive(&model, &synthetic_target, &batch);
        let logits_o = infer_inductive(&model, &original_target, &batch);
        hits_s += accuracy(&logits_s, &batch.labels) * batch.len() as f64;
        hits_o += accuracy(&logits_o, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    println!(
        "inductive accuracy — on S through M: {:.2}%   on full T: {:.2}%",
        100.0 * hits_s / total as f64,
        100.0 * hits_o / total as f64,
    );
}
