//! Non-parametric calibration on the condensed graph (paper Table III):
//! label propagation and error propagation refine inductive predictions at
//! negligible cost, because propagation runs on the tiny synthetic graph.
//!
//! ```sh
//! cargo run --release --example propagation_calibration
//! ```

use mcond::prelude::*;
use std::time::Instant;

fn main() {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(&data, &McondConfig { ratio: 0.02, ..Default::default() });

    // Train on the synthetic graph (the paper's Table III baseline).
    let ops = GraphOps::from_adj(&condensed.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        condensed.synthetic.feature_dim(),
        64,
        condensed.synthetic.num_classes,
        0,
    );
    train(
        &mut model,
        &ops,
        &condensed.synthetic.features,
        &condensed.synthetic.labels,
        &TrainConfig { epochs: 150, lr: 0.03, ..TrainConfig::default() },
        None,
    );

    let cfg = PropagationConfig::default();
    let n_syn = condensed.synthetic.num_nodes();
    let mut vanilla_hits = 0.0;
    let mut lp_hits = 0.0;
    let mut ep_hits = 0.0;
    let mut total = 0usize;
    let mut prop_seconds = 0.0;

    for batch in data.test_batches(1000, true) {
        // Attach test nodes to S through M (Eq. 11).
        let (adj, x) = attach_to_synthetic(&condensed.synthetic, &condensed.mapping, &batch);
        let graph_ops = GraphOps::from_adj(&adj);
        let logits = model.predict(&graph_ops, &x);
        let test_logits = logits.slice_rows(n_syn, logits.rows());
        vanilla_hits += accuracy(&test_logits, &batch.labels) * batch.len() as f64;

        let start = Instant::now();
        // LP: diffuse the synthetic labels Y' to the attached test nodes.
        let lp = label_propagation(
            &adj,
            &condensed.synthetic.labels,
            n_syn,
            condensed.synthetic.num_classes,
            &cfg,
        );
        // EP: diffuse the model's residual error on synthetic nodes.
        let ep = error_propagation(&adj, &logits, &condensed.synthetic.labels, n_syn, 1.0, &cfg);
        prop_seconds += start.elapsed().as_secs_f64();

        lp_hits +=
            accuracy(&lp.slice_rows(n_syn, lp.rows()), &batch.labels) * batch.len() as f64;
        ep_hits +=
            accuracy(&ep.slice_rows(n_syn, ep.rows()), &batch.labels) * batch.len() as f64;
        total += batch.len();
    }

    let n = total as f64;
    println!("inductive accuracy on the synthetic graph (graph batch):");
    println!("  vanilla GNN:        {:.2}%", 100.0 * vanilla_hits / n);
    println!("  + label propagation: {:.2}%", 100.0 * lp_hits / n);
    println!("  + error propagation: {:.2}%", 100.0 * ep_hits / n);
    println!("  propagation time:    {:.3} ms total", 1000.0 * prop_seconds);
}
