//! Fault-tolerant serving: typed errors, per-request panic isolation,
//! fallback policies, and the request-level chaos harness (DESIGN.md §4f),
//! plus the observability layer watching it all (DESIGN.md §4h): the
//! self-profiler decomposing the serve path into its stage spans, and the
//! panic flight recorder producing a trace-stamped post-mortem.
//!
//! Condenses a small graph, then attacks the resulting [`InductiveServer`]
//! with every corrupted batch from `mcond::core::chaos` — on **both**
//! serving modes, at 1 and 4 threads — asserting the robustness contract:
//! every corruption is answered with a typed [`ServeError`] (never a
//! panic, never a non-finite logit), and corrupted siblings in a mixed
//! fan-out leave valid results bitwise untouched.
//!
//! ```sh
//! cargo run --release --example robust_serving
//! # with a JSONL trace for offline analysis (see trace-report):
//! MCOND_LOG=target/robust_serving_trace.jsonl cargo run --release --example robust_serving
//! ```

use mcond::core::chaos::corrupted_batches;
use mcond::prelude::*;

fn main() {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(
        &data,
        &McondConfig { ratio: 0.02, outer_loops: 2, relay_steps: 8, ..Default::default() },
    );
    let original = data.original_graph();
    let model = GnnModel::new(
        GnnKind::Gcn,
        data.full.feature_dim(),
        32,
        data.full.num_classes,
        0,
    );

    // --- chaos sweep: both serving modes, both thread counts -------------
    let donor = data.test_batches(50, true).remove(0);
    let catalogue = corrupted_batches(&donor);
    println!("chaos catalogue: {} corruptions of a valid {}-node batch", catalogue.len(), donor.len());

    let on_original = InductiveServer::on_original(&original, &model);
    let on_synthetic =
        InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);
    for (mode, server) in [("original", &on_original), ("synthetic", &on_synthetic)] {
        for threads in [1usize, 4] {
            let mut batches = vec![donor.clone()];
            batches.extend(corrupted_batches(&donor).into_iter().map(|c| c.batch));
            let results =
                mcond::par::with_thread_limit(threads, || server.try_serve_many(&batches));

            let valid = results[0].as_ref().unwrap_or_else(|e| {
                panic!("{mode}@{threads}: valid batch rejected: {e}")
            });
            assert!(valid.all_finite(), "{mode}@{threads}: non-finite logits served");
            for (case, result) in catalogue.iter().zip(&results[1..]) {
                match result {
                    Err(e) => {
                        assert!(
                            matches!(e, ServeError::InvalidBatch(_)),
                            "{mode}@{threads}/{}: unexpected error class {e:?}",
                            case.name
                        );
                    }
                    Ok(_) => panic!("{mode}@{threads}/{}: corruption was served", case.name),
                }
            }
            println!(
                "  [{mode}] {} threads: {} corruptions -> typed errors, valid batch served",
                threads,
                catalogue.len()
            );
        }
    }

    // Valid results are bitwise identical across thread counts.
    let reference = on_synthetic.try_serve(&donor).expect("reference serve");
    for threads in [1usize, 4] {
        let again = mcond::par::with_thread_limit(threads, || {
            on_synthetic.try_serve_many(std::slice::from_ref(&donor))
        })
        .remove(0)
        .expect("valid batch serves");
        assert_eq!(
            again.as_slice(),
            reference.as_slice(),
            "thread count changed valid results"
        );
    }
    println!("  valid logits bitwise identical at 1 and 4 threads");

    // --- self-profile: the serve path decomposes into its stages ---------
    // The profiler folds span closes into a call tree; the stage spans
    // (validate / attach / propagate / head, plus fallback when it fires)
    // must account for >= 90% of the serve span's wall time — anything
    // less means untraced work crept into the hot path.
    mcond::obs::profile::start();
    {
        // Profile against the in-memory sink: with `MCOND_LOG` pointed at a
        // file, per-record write latency would otherwise be charged to the
        // serve span's self time and drown the stages it decomposes into.
        let _sink = mcond::obs::testing::capture();
        for batch in &data.test_batches(50, true) {
            let _ = on_original.try_serve(batch);
        }
    }
    let profile = mcond::obs::profile::stop();
    print!("{}", profile.table());
    let serve = profile.get("serve").expect("serve span profiled");
    let stage_self: u64 = ["validate", "attach", "fallback", "propagate", "head"]
        .iter()
        .filter_map(|s| profile.get(&format!("serve/{s}")))
        .map(|e| e.self_us)
        .sum();
    assert!(
        stage_self * 10 >= serve.total_us * 9,
        "stage spans cover only {stage_self}us of the {}us serve path",
        serve.total_us
    );
    println!(
        "  self-profile: stages cover {stage_self}us / {}us of serve ({:.1}%)",
        serve.total_us,
        100.0 * stage_self as f64 / serve.total_us.max(1) as f64
    );

    // --- panic flight recorder -------------------------------------------
    // A model misconfigured for the feature dimension blows up inside the
    // forward pass, past validation. With the flight recorder on, the
    // caught panic dumps the last events on the dying request's thread as
    // one `flight` record stamped with that request's trace id.
    {
        use mcond::obs::Json;
        let cap = mcond::obs::testing::capture();
        mcond::obs::flight::enable(true);
        let bad_model = GnnModel::new(
            GnnKind::Gcn,
            data.full.feature_dim() + 1,
            8,
            data.full.num_classes,
            1,
        );
        let bad = InductiveServer::on_original(&original, &bad_model);
        let results = mcond::par::with_thread_limit(1, || {
            bad.try_serve_many(std::slice::from_ref(&donor))
        });
        mcond::obs::flight::enable(false);
        assert!(
            matches!(results[0], Err(ServeError::Panicked { .. })),
            "misconfigured model should panic past validation"
        );
        let dump = cap
            .parsed_lines()
            .into_iter()
            .find(|l| l.get("ev").and_then(Json::as_str) == Some("flight"))
            .expect("caught panic must dump the flight ring");
        let trace = dump.get("trace").and_then(Json::as_f64).unwrap_or(0.0);
        let events = dump.get("events").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        assert!(trace > 0.0, "flight dump must carry the dying request's trace id");
        assert!(events > 0, "flight dump must carry the pre-panic events");
        mcond::obs::flight::clear();
        println!("  flight recorder: panic dumped {events} events for trace {trace:.0}");
    }

    // --- fallback policies ----------------------------------------------
    // A brutally sparsified mapping leaves some inductive nodes with an
    // empty `aM` row; each policy answers them differently.
    let pruned = {
        let mut coo = Coo::new(condensed.mapping.rows(), condensed.mapping.cols());
        for (i, j, v) in condensed.mapping.iter() {
            if v >= 0.9 {
                coo.push(i, j, v);
            }
        }
        coo.to_csr()
    };
    let batch = data.test_batches(200, true).remove(0);
    let uncovered = {
        let strict = InductiveServer::on_synthetic(&condensed.synthetic, &pruned, &model)
            .with_fallback(FallbackPolicy::Reject);
        match strict.try_serve(&batch) {
            Err(ServeError::NoAttachment { node, coverage }) => {
                println!(
                    "  Reject: refused — node {node} has coverage {coverage:.3} under the pruned mapping"
                );
                true
            }
            Ok(_) => {
                println!("  Reject: every node still covered after pruning");
                false
            }
            Err(e) => panic!("unexpected error under Reject: {e}"),
        }
    };

    let lenient = InductiveServer::on_synthetic(&condensed.synthetic, &pruned, &model);
    let served = lenient.try_serve(&batch).expect("SelfLoopOnly always serves");
    let snap = lenient.metrics_snapshot();
    let fallback = snap
        .counters
        .iter()
        .find(|(k, _)| k == "serve.fallback")
        .map_or(0, |(_, v)| *v);
    println!(
        "  SelfLoopOnly: served {} nodes, {} via self-loop fallback",
        served.rows(),
        fallback
    );
    assert!(served.all_finite());

    let degraded_server = InductiveServer::on_synthetic(&condensed.synthetic, &pruned, &model)
        .with_fallback(FallbackPolicy::OriginalGraph)
        .with_original_graph(&original);
    let degraded = degraded_server.try_serve(&batch).expect("OriginalGraph fallback serves");
    if uncovered {
        let eq3 = InductiveServer::on_original(&original, &model).serve(&batch);
        assert_eq!(
            degraded.as_slice(),
            eq3.as_slice(),
            "degraded batch must match Eq. 3 serving exactly"
        );
        println!("  OriginalGraph: degraded batch matches Eq. 3 serving bitwise");
    } else {
        println!("  OriginalGraph: no fallback needed, served on the synthetic graph");
    }

    println!("robust_serving: all invariants held");
}
