//! Fault-tolerant serving: typed errors, per-request panic isolation,
//! fallback policies, and the request-level chaos harness (DESIGN.md §4f).
//!
//! Condenses a small graph, then attacks the resulting [`InductiveServer`]
//! with every corrupted batch from `mcond::core::chaos` — on **both**
//! serving modes, at 1 and 4 threads — asserting the robustness contract:
//! every corruption is answered with a typed [`ServeError`] (never a
//! panic, never a non-finite logit), and corrupted siblings in a mixed
//! fan-out leave valid results bitwise untouched.
//!
//! ```sh
//! cargo run --release --example robust_serving
//! ```

use mcond::core::chaos::corrupted_batches;
use mcond::prelude::*;

fn main() {
    let data = load_dataset("pubmed", Scale::Small, 0).expect("bundled dataset");
    let condensed = condense(
        &data,
        &McondConfig { ratio: 0.02, outer_loops: 2, relay_steps: 8, ..Default::default() },
    );
    let original = data.original_graph();
    let model = GnnModel::new(
        GnnKind::Gcn,
        data.full.feature_dim(),
        32,
        data.full.num_classes,
        0,
    );

    // --- chaos sweep: both serving modes, both thread counts -------------
    let donor = data.test_batches(50, true).remove(0);
    let catalogue = corrupted_batches(&donor);
    println!("chaos catalogue: {} corruptions of a valid {}-node batch", catalogue.len(), donor.len());

    let on_original = InductiveServer::on_original(&original, &model);
    let on_synthetic =
        InductiveServer::on_synthetic(&condensed.synthetic, &condensed.mapping, &model);
    for (mode, server) in [("original", &on_original), ("synthetic", &on_synthetic)] {
        for threads in [1usize, 4] {
            let mut batches = vec![donor.clone()];
            batches.extend(corrupted_batches(&donor).into_iter().map(|c| c.batch));
            let results =
                mcond::par::with_thread_limit(threads, || server.try_serve_many(&batches));

            let valid = results[0].as_ref().unwrap_or_else(|e| {
                panic!("{mode}@{threads}: valid batch rejected: {e}")
            });
            assert!(valid.all_finite(), "{mode}@{threads}: non-finite logits served");
            for (case, result) in catalogue.iter().zip(&results[1..]) {
                match result {
                    Err(e) => {
                        assert!(
                            matches!(e, ServeError::InvalidBatch(_)),
                            "{mode}@{threads}/{}: unexpected error class {e:?}",
                            case.name
                        );
                    }
                    Ok(_) => panic!("{mode}@{threads}/{}: corruption was served", case.name),
                }
            }
            println!(
                "  [{mode}] {} threads: {} corruptions -> typed errors, valid batch served",
                threads,
                catalogue.len()
            );
        }
    }

    // Valid results are bitwise identical across thread counts.
    let reference = on_synthetic.try_serve(&donor).expect("reference serve");
    for threads in [1usize, 4] {
        let again = mcond::par::with_thread_limit(threads, || {
            on_synthetic.try_serve_many(std::slice::from_ref(&donor))
        })
        .remove(0)
        .expect("valid batch serves");
        assert_eq!(
            again.as_slice(),
            reference.as_slice(),
            "thread count changed valid results"
        );
    }
    println!("  valid logits bitwise identical at 1 and 4 threads");

    // --- fallback policies ----------------------------------------------
    // A brutally sparsified mapping leaves some inductive nodes with an
    // empty `aM` row; each policy answers them differently.
    let pruned = {
        let mut coo = Coo::new(condensed.mapping.rows(), condensed.mapping.cols());
        for (i, j, v) in condensed.mapping.iter() {
            if v >= 0.9 {
                coo.push(i, j, v);
            }
        }
        coo.to_csr()
    };
    let batch = data.test_batches(200, true).remove(0);
    let uncovered = {
        let strict = InductiveServer::on_synthetic(&condensed.synthetic, &pruned, &model)
            .with_fallback(FallbackPolicy::Reject);
        match strict.try_serve(&batch) {
            Err(ServeError::NoAttachment { node, coverage }) => {
                println!(
                    "  Reject: refused — node {node} has coverage {coverage:.3} under the pruned mapping"
                );
                true
            }
            Ok(_) => {
                println!("  Reject: every node still covered after pruning");
                false
            }
            Err(e) => panic!("unexpected error under Reject: {e}"),
        }
    };

    let lenient = InductiveServer::on_synthetic(&condensed.synthetic, &pruned, &model);
    let served = lenient.try_serve(&batch).expect("SelfLoopOnly always serves");
    let snap = lenient.metrics_snapshot();
    let fallback = snap
        .counters
        .iter()
        .find(|(k, _)| k == "serve.fallback")
        .map_or(0, |(_, v)| *v);
    println!(
        "  SelfLoopOnly: served {} nodes, {} via self-loop fallback",
        served.rows(),
        fallback
    );
    assert!(served.all_finite());

    let degraded_server = InductiveServer::on_synthetic(&condensed.synthetic, &pruned, &model)
        .with_fallback(FallbackPolicy::OriginalGraph)
        .with_original_graph(&original);
    let degraded = degraded_server.try_serve(&batch).expect("OriginalGraph fallback serves");
    if uncovered {
        let eq3 = InductiveServer::on_original(&original, &model).serve(&batch);
        assert_eq!(
            degraded.as_slice(),
            eq3.as_slice(),
            "degraded batch must match Eq. 3 serving exactly"
        );
        println!("  OriginalGraph: degraded batch matches Eq. 3 serving bitwise");
    } else {
        println!("  OriginalGraph: no fallback needed, served on the synthetic graph");
    }

    println!("robust_serving: all invariants held");
}
