//! # mcond
//!
//! A Rust reproduction of **"Graph Condensation for Inductive Node
//! Representation Learning"** (MCond, ICDE 2024).
//!
//! MCond condenses a large training graph `T = {A, X, Y}` into a small
//! synthetic graph `S = {A', X', Y'}` *and* learns an explicit one-to-many
//! mapping `M : N x N'` from original to synthetic nodes, so unseen
//! (inductive) nodes can be attached directly to the synthetic graph via
//! `aM` — message passing then runs on `N' ≪ N` nodes, giving large
//! inference speedups and memory savings at near-par accuracy.
//!
//! This crate is a facade over the workspace:
//!
//! * [`linalg`] — dense matrices ([`linalg::DMat`]),
//! * [`sparse`] — CSR graphs, GCN normalisation, sparsification,
//! * [`autodiff`] — the reverse-mode tape engine,
//! * [`graph`] — datasets, inductive splits, generators,
//! * [`gnn`] — SGC/GCN/GraphSAGE/APPNP/Cheby models and training,
//! * [`core`] — MCond itself plus GCond/coreset/VNG baselines,
//! * [`store`] — versioned, CRC-checked checkpointing of condensed
//!   artifacts ([`core::Checkpoint`] bundles `S`, `M` and the weights),
//! * [`propagate`] — label & error propagation calibration,
//! * [`par`] — the deterministic worker pool behind the kernels
//!   (`MCOND_THREADS`; results are bitwise identical at any thread count),
//! * [`serve`] — the std-only HTTP/1.1 front end: `POST /v1/serve` with
//!   adaptive micro-batching and load shedding over a live socket.
//!
//! ## Quickstart
//!
//! ```no_run
//! use mcond::prelude::*;
//!
//! // 1. An inductive dataset: train subgraph = "original graph" T.
//! let data = load_dataset("pubmed", Scale::Small, 0).unwrap();
//!
//! // 2. Condense T into S and learn the mapping M (Algorithm 1).
//! let condensed = condense(&data, &McondConfig { ratio: 0.02, ..Default::default() });
//!
//! // 3. Train any GNN on the small graph S.
//! let model = {
//!     let ops = GraphOps::from_adj(&condensed.synthetic.adj);
//!     let mut m = GnnModel::new(GnnKind::Sgc, condensed.synthetic.feature_dim(), 64,
//!                               condensed.synthetic.num_classes, 0);
//!     train(&mut m, &ops, &condensed.synthetic.features,
//!           &condensed.synthetic.labels, &TrainConfig::default(), None);
//!     m
//! };
//!
//! // 4. Inductive inference directly on S through M (Eq. 11).
//! let batch = data.test_batches(1000, false).remove(0);
//! let target = InferenceTarget::Synthetic {
//!     graph: &condensed.synthetic,
//!     mapping: &condensed.mapping,
//! };
//! let logits = infer_inductive(&model, &target, &batch);
//! println!("accuracy: {:.2}%", 100.0 * accuracy(&logits, &batch.labels));
//! ```

pub use mcond_autodiff as autodiff;
pub use mcond_core as core;
pub use mcond_gnn as gnn;
pub use mcond_graph as graph;
pub use mcond_linalg as linalg;
pub use mcond_obs as obs;
pub use mcond_propagate as propagate;
pub use mcond_par as par;
pub use mcond_serve as serve;
pub use mcond_sparse as sparse;
pub use mcond_store as store;

/// The most common imports in one place.
pub mod prelude {
    pub use mcond_autodiff::{Adam, Tape, Var};
    pub use mcond_core::{
        attach_to_original, attach_to_synthetic, condense, coreset, infer_inductive, vng,
        CacheOutcome, Checkpoint, Condensed, CoresetMethod, DeltaError, DeltaLineage,
        FallbackPolicy, GraphDelta, InductiveServer, InferenceTarget, LiveBase, McondConfig,
        PromotionReport, ServeError, ServeMode,
    };
    pub use mcond_gnn::{
        accuracy, train, CostMeter, FrozenBase, GnnKind, GnnModel, GraphOps, TrainConfig,
    };
    pub use mcond_graph::{
        generate_sbm, load_dataset, BatchError, Graph, InductiveDataset, NodeBatch, SbmConfig,
        Scale,
    };
    pub use mcond_linalg::{DMat, MatRng};
    pub use mcond_propagate::{error_propagation, label_propagation, PropagationConfig};
    pub use mcond_serve::{ServeConfig, ServeHandle};
    pub use mcond_sparse::{sparsify_dense, sym_normalize, Coo, Csr};
    pub use mcond_store::StoreError;
}
