//! `mcond-cli` — condense graphs and serve inductive inference from the
//! command line.
//!
//! ```sh
//! # generate a bundled dataset and save the full graph
//! mcond-cli generate --dataset pubmed --scale small --out pubmed.mcg
//!
//! # condense it and save the deployable artifact bundle
//! mcond-cli condense --dataset pubmed --scale small --ratio 0.02 --out artifact/
//!
//! # evaluate inductive inference from the artifact
//! mcond-cli infer --artifact artifact/ --dataset pubmed --scale small
//!
//! # inspect any .mcg graph file
//! mcond-cli info --graph pubmed.mcg
//! ```

use mcond::graph::{import_graph, load_graph, save_graph};
use mcond::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: mcond-cli <command> [options]

commands:
  generate  --dataset NAME [--scale small|paper] [--seed N] --out FILE.mcg
  import    --edges FILE --nodes FILE --out FILE.mcg
  condense  --dataset NAME [--scale small|paper] [--seed N] [--ratio R]
            [--epochs N] --out DIR
  infer     --artifact DIR --dataset NAME [--scale small|paper] [--seed N]
            [--epochs N] [--graph-batch]
  info      --graph FILE.mcg";

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {key:?}"));
        };
        if name == "graph-batch" {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("missing value for --{name}"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("missing --{name}"))
}

fn parse_scale(flags: &HashMap<String, String>) -> Result<Scale, String> {
    match flags.get("scale").map(String::as_str) {
        None | Some("small") => Ok(Scale::Small),
        Some("paper") => Ok(Scale::Paper),
        Some(other) => Err(format!("unknown scale {other:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{name}: {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".to_owned());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "import" => cmd_import(&flags),
        "condense" => cmd_condense(&flags),
        "infer" => cmd_infer(&flags),
        "info" => cmd_info(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_named(flags: &HashMap<String, String>) -> Result<InductiveDataset, String> {
    let name = required(flags, "dataset")?;
    let scale = parse_scale(flags)?;
    let seed = parse_num(flags, "seed", 0u64)?;
    load_dataset(name, scale, seed)
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = required(flags, "out")?;
    let data = load_named(flags)?;
    save_graph(&data.full, Path::new(out)).map_err(|e| e.to_string())?;
    let stats = data.full.stats();
    println!(
        "wrote {out}: {} nodes, {} edges, {} features, {} classes",
        stats.nodes, stats.edges, stats.features, stats.classes
    );
    Ok(())
}

fn cmd_import(flags: &HashMap<String, String>) -> Result<(), String> {
    let edges = required(flags, "edges")?;
    let nodes = required(flags, "nodes")?;
    let out = required(flags, "out")?;
    let graph = import_graph(Path::new(edges), Path::new(nodes)).map_err(|e| e.to_string())?;
    save_graph(&graph, Path::new(out)).map_err(|e| e.to_string())?;
    let stats = graph.stats();
    println!(
        "imported {out}: {} nodes, {} edges, {} features, {} classes, homophily {:.3}",
        stats.nodes,
        stats.edges,
        stats.features,
        stats.classes,
        graph.edge_homophily()
    );
    Ok(())
}

fn cmd_condense(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = required(flags, "out")?;
    let data = load_named(flags)?;
    let ratio = parse_num(flags, "ratio", 0.02f64)?;
    let seed = parse_num(flags, "seed", 0u64)?;
    let cfg = McondConfig { ratio, seed, ..McondConfig::default() };
    println!(
        "condensing {} training nodes at r = {:.2}% ...",
        data.train_idx.len(),
        100.0 * ratio
    );
    let condensed = condense(&data, &cfg);
    mcond::core::save_condensed(&condensed, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote artifact to {out}: {} synthetic nodes, mapping nnz = {}",
        condensed.synthetic.num_nodes(),
        condensed.mapping.nnz()
    );
    Ok(())
}

fn cmd_infer(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = required(flags, "artifact")?;
    let artifact = mcond::core::load_condensed(Path::new(dir)).map_err(|e| e.to_string())?;
    let data = load_named(flags)?;
    let epochs = parse_num(flags, "epochs", 150usize)?;
    let seed = parse_num(flags, "seed", 0u64)?;
    let graph_batch = flags.contains_key("graph-batch");

    // Train SGC on the synthetic graph (the S->S deployment).
    let ops = GraphOps::from_adj(&artifact.synthetic.adj);
    let mut model = GnnModel::new(
        GnnKind::Sgc,
        artifact.synthetic.feature_dim(),
        64,
        artifact.synthetic.num_classes,
        seed,
    );
    train(
        &mut model,
        &ops,
        &artifact.synthetic.features,
        &artifact.synthetic.labels,
        &TrainConfig { epochs, lr: 0.03, ..TrainConfig::default() },
        None,
    );

    let target = InferenceTarget::Synthetic {
        graph: &artifact.synthetic,
        mapping: &artifact.mapping,
    };
    let mut hits = 0.0;
    let mut total = 0usize;
    let start = std::time::Instant::now();
    for batch in data.test_batches(1000, graph_batch) {
        let logits = infer_inductive(&model, &target, &batch);
        hits += accuracy(&logits, &batch.labels) * batch.len() as f64;
        total += batch.len();
    }
    let elapsed = start.elapsed();
    println!(
        "inductive accuracy on {} test nodes ({} batch): {:.2}%  ({:.1} ms total)",
        total,
        if graph_batch { "graph" } else { "node" },
        100.0 * hits / total as f64,
        1000.0 * elapsed.as_secs_f64()
    );
    println!("artifact footprint: {:.3} MB", artifact.storage_bytes() as f64 / 1e6);
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "graph")?;
    let graph = load_graph(Path::new(path)).map_err(|e| e.to_string())?;
    let stats = graph.stats();
    println!("graph {path}:");
    println!("  nodes      {}", stats.nodes);
    println!("  edges      {}", stats.edges);
    println!("  features   {}", stats.features);
    println!("  classes    {}", stats.classes);
    println!("  homophily  {:.4}", graph.edge_homophily());
    println!("  class sizes {:?}", graph.class_counts());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect()
    }

    #[test]
    fn parse_flags_accepts_pairs_and_switches() {
        let args: Vec<String> = ["--dataset", "pubmed", "--graph-batch", "--seed", "3"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags.get("dataset").unwrap(), "pubmed");
        assert_eq!(flags.get("graph-batch").unwrap(), "true");
        assert_eq!(flags.get("seed").unwrap(), "3");
    }

    #[test]
    fn parse_flags_rejects_positional_arguments() {
        let args = vec!["pubmed".to_owned()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args = vec!["--out".to_owned()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(&flags_of(&[])).unwrap(), Scale::Small);
        assert_eq!(parse_scale(&flags_of(&[("scale", "paper")])).unwrap(), Scale::Paper);
        assert!(parse_scale(&flags_of(&[("scale", "huge")])).is_err());
    }

    #[test]
    fn numeric_parsing_uses_defaults() {
        let flags = flags_of(&[("ratio", "0.05")]);
        assert_eq!(parse_num(&flags, "ratio", 0.02f64).unwrap(), 0.05);
        assert_eq!(parse_num(&flags, "seed", 7u64).unwrap(), 7);
        assert!(parse_num(&flags_of(&[("seed", "x")]), "seed", 0u64).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_owned()]).is_err());
        assert!(run(&[]).is_err());
    }
}
